"""Shared helpers for the differential kernel suite."""

from repro import kernels


def differential(fn, *args, **kwargs):
    """Run ``fn(*args)`` under both kernel modes; returns the pair
    ``(vectorized_result, reference_result)`` for the caller to compare.

    Restores whatever mode was active, so tests cannot leak mode state
    into each other.
    """
    with kernels.force_mode("vectorized"):
        vectorized = fn(*args, **kwargs)
    with kernels.force_mode("reference"):
        reference = fn(*args, **kwargs)
    return vectorized, reference
