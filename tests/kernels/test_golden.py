"""Golden byte-identity for stored artifacts across codecs.

Three invariants:

* the v2 binary encoding of a fixed object is pinned by digest — any
  codec or hash-kernel drift that would silently re-fingerprint stored
  catalogs breaks here first;
* a store opened with the v3 mmap default reads existing v2 artifacts
  byte-identically (read-through never rewrites or reinterprets them);
* a torn v3 artifact fails closed onto the surviving v2 representation
  and surfaces as a ``verify()`` finding, never as a garbage signature.
"""

import glob
import hashlib
import os

import pytest

from repro.catalog.store import CODECS, CatalogStore, MmapCodec
from repro.discovery import MinHasher
from repro.discovery.index import ColumnEntry

from tests.harness.faults import torn_artifact

FINGERPRINT = "deadbeefdeadbeef-cafebabecafebabecafebabecafebabe"

#: sha256 of the v2 BinaryCodec encoding of :func:`golden_object` —
#: pinned bytes, not just pinned structure.
V2_GOLDEN_SHA256 = (
    "3d5aff9e562eead0f640ec88f94fda05b606734ef29a9af9211bbf440743cd38"
)


def golden_object():
    """A fixed object whose signatures come from the pinned v1 hash."""
    hasher = MinHasher(num_perm=16, seed=0)
    meta = {"rows": 4, "source": "golden", "hash_version": 1}
    entries = {}
    for name, values in (
        ("city", {"paris", "tokyo", "café"}),
        ("empty", set()),
        ("ids", {"1", "2", "3", ""}),
    ):
        distinct = frozenset(values)
        entries[name] = ColumnEntry(
            distinct=distinct,
            normalized=frozenset(v.strip().lower() for v in distinct),
            signature=hasher.signature(values),
        )
    return meta, entries


def entries_equal(a, b):
    return set(a) == set(b) and all(a[k] == b[k] for k in a)


class TestGoldenBytes:
    def test_v2_encoding_pinned(self):
        meta, entries = golden_object()
        blob = CODECS[2].encode(meta, entries)
        assert hashlib.sha256(blob).hexdigest() == V2_GOLDEN_SHA256

    def test_v3_encoding_canonical(self):
        meta, entries = golden_object()
        codec = MmapCodec()
        reordered = {k: entries[k] for k in reversed(sorted(entries))}
        assert codec.encode(meta, entries) == codec.encode(meta, reordered)

    def test_v3_round_trip_zero_copy(self):
        meta, entries = golden_object()
        codec = MmapCodec()
        blob = codec.encode(meta, entries)
        codec.check(blob)  # crc + full structural validation
        meta_back, back = codec.decode(blob)
        assert meta_back == meta
        assert entries_equal(back, entries)
        signature = back["city"].signature
        assert not signature.flags.owndata  # view into the blob
        assert not signature.flags.writeable


class TestReadThrough:
    def test_v2_store_reads_byte_identical_through_v3_default(self, tmp_path):
        meta, entries = golden_object()
        v2_store = CatalogStore(str(tmp_path))
        v2_store.write_object(FINGERPRINT, meta, entries)
        (v2_path,) = glob.glob(
            os.path.join(str(tmp_path), "**", "*.bin"), recursive=True
        )
        before = open(v2_path, "rb").read()

        v3_store = CatalogStore(str(tmp_path), object_codec=3)
        meta_back, back = v3_store.read_object(FINGERPRINT)
        assert meta_back == meta
        assert entries_equal(back, entries)
        assert open(v2_path, "rb").read() == before
        assert v3_store.read_object_meta(FINGERPRINT) == meta

    def test_v3_write_supersedes_v2(self, tmp_path):
        meta, entries = golden_object()
        CatalogStore(str(tmp_path)).write_object(FINGERPRINT, meta, entries)
        v3_store = CatalogStore(str(tmp_path), object_codec=3)
        v3_store.write_object(FINGERPRINT, meta, entries, overwrite=True)
        root = str(tmp_path)
        assert glob.glob(os.path.join(root, "**", "*.mmap"), recursive=True)
        assert not glob.glob(os.path.join(root, "**", "*.bin"), recursive=True)
        meta_back, back = v3_store.read_object(FINGERPRINT)
        assert meta_back == meta and entries_equal(back, entries)
        assert v3_store.verify()["problems"] == []

    def test_unknown_codec_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="codec"):
            CatalogStore(str(tmp_path), object_codec=9)


class TestTornV3FailsClosed:
    def _store_with_torn_v3(self, tmp_path):
        meta, entries = golden_object()
        store = CatalogStore(str(tmp_path), object_codec=3)
        # Healthy v2 representation first (the pre-upgrade state)...
        CatalogStore(str(tmp_path)).write_object(FINGERPRINT, meta, entries)
        (v2_path,) = glob.glob(
            os.path.join(str(tmp_path), "**", "*.bin"), recursive=True
        )
        # ...then a crashed upgrade leaves a half-written v3 beside it.
        healthy_v3 = MmapCodec().encode(meta, entries)
        torn_path = v2_path[: -len(".bin")] + ".mmap"
        torn_artifact(torn_path, healthy_v3)
        return store, meta, entries, torn_path

    def test_read_falls_through_to_v2(self, tmp_path):
        store, meta, entries, _ = self._store_with_torn_v3(tmp_path)
        meta_back, back = store.read_object(FINGERPRINT)
        assert meta_back == meta
        assert entries_equal(back, entries)

    def test_verify_reports_the_torn_file(self, tmp_path):
        store, _, _, torn_path = self._store_with_torn_v3(tmp_path)
        problems = store.verify()["problems"]
        assert any(torn_path in problem for problem in problems)

    def test_bit_rot_canary(self, tmp_path):
        """A structurally valid blob with a flipped signature byte passes
        decode (lazy paging never checksums) but fails deep check()."""
        meta, entries = golden_object()
        codec = MmapCodec()
        blob = bytearray(codec.encode(meta, entries))
        blob[48] ^= 0x01  # inside the first signature block
        codec.decode(bytes(blob))  # structure intact
        from repro.catalog import CatalogStoreError

        with pytest.raises(CatalogStoreError, match="crc"):
            codec.check(bytes(blob))

    def test_all_representations_torn_raises(self, tmp_path):
        meta, entries = golden_object()
        store = CatalogStore(str(tmp_path), object_codec=3)
        store.write_object(FINGERPRINT, meta, entries)
        (v3_path,) = glob.glob(
            os.path.join(str(tmp_path), "**", "*.mmap"), recursive=True
        )
        blob = open(v3_path, "rb").read()
        torn_artifact(v3_path, blob)
        from repro.catalog import CatalogStoreError

        with pytest.raises(CatalogStoreError, match="corrupt"):
            store.read_object(FINGERPRINT)
