"""Shared fixtures for the differential kernel suite."""

import pytest

from tests.kernels.util import differential as _differential

#: The seed matrix every hash-sensitive differential test runs across.
HASH_SEEDS = (0, 1, 2)


@pytest.fixture(params=HASH_SEEDS)
def hash_seed(request):
    """One seed of the 3-seed differential matrix."""
    return request.param


@pytest.fixture
def differential():
    """The both-modes runner as a fixture (plain-pytest tests only;
    hypothesis tests import :func:`tests.kernels.util.differential`
    directly to stay clear of the function-scoped-fixture health
    check)."""
    return _differential
