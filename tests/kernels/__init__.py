"""Differential kernel-equivalence suite.

Every vectorized kernel in :mod:`repro.kernels` is driven against its
retained scalar reference on adversarial columns; golden tests pin the
hash families and artifact bytes so a silent change to either breaks
loudly.
"""
