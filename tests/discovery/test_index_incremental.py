"""Tests for incremental index maintenance and down-sampling behavior."""

import numpy as np
import pytest

from repro.dataframe.table import Table
from repro.discovery.index import DiscoveryIndex
from repro.discovery.lsh import LshIndex
from repro.discovery.minhash import MinHasher


class TestLshRemoval:
    def test_remove_then_query(self):
        h = MinHasher(num_perm=16)
        lsh = LshIndex(num_perm=16, bands=8)
        sig = h.signature({"a", "b", "c"})
        lsh.insert("x", sig)
        lsh.insert("y", h.signature({"d", "e"}))
        lsh.remove("x")
        assert len(lsh) == 1
        assert "x" not in lsh.query(sig)
        with pytest.raises(KeyError):
            lsh.signature_of("x")

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            LshIndex(num_perm=16, bands=8).remove("ghost")

    def test_reinsert_after_remove(self):
        h = MinHasher(num_perm=16)
        lsh = LshIndex(num_perm=16, bands=8)
        sig = h.signature({"a"})
        lsh.insert("x", sig)
        lsh.remove("x")
        lsh.insert("x", sig)
        assert "x" in lsh.query(sig)

    def test_empty_buckets_pruned(self):
        h = MinHasher(num_perm=16)
        lsh = LshIndex(num_perm=16, bands=8)
        lsh.insert("x", h.signature({"a"}))
        lsh.remove("x")
        assert all(not bucket for bucket in lsh._buckets)


class TestLshBulkInsert:
    def test_matches_individual_inserts(self):
        h = MinHasher(num_perm=16)
        sigs = np.stack([h.signature({f"v{i}", f"w{i}"}) for i in range(5)])
        one = LshIndex(num_perm=16, bands=8)
        for i in range(5):
            one.insert(f"item{i}", sigs[i])
        bulk = LshIndex(num_perm=16, bands=8)
        bulk.insert_many([f"item{i}" for i in range(5)], sigs)
        for i in range(5):
            assert one.query(sigs[i]) == bulk.query(sigs[i])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LshIndex(num_perm=16, bands=8).insert_many(
                ["a"], np.zeros((1, 8), dtype=np.uint64)
            )

    def test_duplicate_rejected(self):
        lsh = LshIndex(num_perm=16, bands=8)
        sig = np.zeros((1, 16), dtype=np.uint64)
        lsh.insert_many(["a"], sig)
        with pytest.raises(ValueError):
            lsh.insert_many(["a"], sig)

    def test_duplicate_within_batch_rejected(self):
        lsh = LshIndex(num_perm=16, bands=8)
        sigs = np.zeros((2, 16), dtype=np.uint64)
        with pytest.raises(ValueError):
            lsh.insert_many(["a", "a"], sigs)
        assert len(lsh) == 0


def two_tables():
    t1 = Table("t1", {"key": ["a", "b", "c"], "v": [1, 2, 3]})
    t2 = Table("t2", {"key": ["a", "b", "d"]})
    return t1, t2


class TestIndexRemoval:
    def test_remove_table_incremental(self):
        t1, t2 = two_tables()
        index = DiscoveryIndex(num_perm=16, bands=8, min_containment=0.1)
        index.add_table(t1)
        index.add_table(t2)
        index.remove_table("t2")
        assert "t2" not in index
        assert index.num_indexed_columns == 2
        probe = Table("probe", {"key": ["a", "b", "c"]})
        refs = [ref.table for ref, _ in index.joinable(probe, "key")]
        assert "t2" not in refs and "t1" in refs

    def test_removed_table_can_return(self):
        t1, _ = two_tables()
        index = DiscoveryIndex(num_perm=16, bands=8)
        index.add_table(t1)
        index.remove_table("t1")
        index.add_table(t1)
        assert "t1" in index

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            DiscoveryIndex().remove_table("ghost")


class TestPrecomputedEntries:
    def test_add_with_entries_matches_cold(self):
        t1, t2 = two_tables()
        cold = DiscoveryIndex(num_perm=16, bands=8, min_containment=0.1)
        cold.add_table(t1)
        cold.add_table(t2)

        warm = DiscoveryIndex(num_perm=16, bands=8, min_containment=0.1)
        warm.add_table(t1, entries=cold.column_entries("t1"))
        warm.add_table(t2, entries=cold.column_entries("t2"))
        probe = Table("probe", {"key": ["a", "b"]})
        assert warm.joinable(probe, "key") == cold.joinable(probe, "key")

    def test_unknown_entry_column_rejected(self):
        t1, _ = two_tables()
        index = DiscoveryIndex(num_perm=16, bands=8)
        entry = index.compute_column_entry(t1, "key")
        with pytest.raises(ValueError):
            index.add_table(t1, entries={"ghost": entry})

    def test_failed_hydration_leaves_index_clean(self):
        t1, _ = two_tables()
        index = DiscoveryIndex(num_perm=16, bands=8, min_containment=0.1)
        narrow = DiscoveryIndex(num_perm=8, bands=4)
        bad = {
            column: narrow.compute_column_entry(t1, column).signature
            for column in t1.column_names
        }
        with pytest.raises(ValueError):
            index.add_table_hydrated(t1, bad)
        assert "t1" not in index  # no half-registered state
        index.add_table(t1)  # retry succeeds cleanly
        assert "t1" in index

    def test_bad_precomputed_entry_leaves_index_clean(self):
        t1, _ = two_tables()
        index = DiscoveryIndex(num_perm=16, bands=8, min_containment=0.1)
        narrow = DiscoveryIndex(num_perm=8, bands=4)
        bad = {c: narrow.compute_column_entry(t1, c) for c in t1.column_names}
        with pytest.raises(ValueError):
            index.add_table(t1, entries=bad)
        assert "t1" not in index
        assert index.num_indexed_columns == 0
        index.add_table(t1)
        assert "t1" in index

    def test_hydrated_requires_all_signatures(self):
        t1, _ = two_tables()
        index = DiscoveryIndex(num_perm=16, bands=8)
        sig = index.compute_column_entry(t1, "key").signature
        with pytest.raises(ValueError):
            index.add_table_hydrated(t1, {"key": sig})

    def test_hydrated_with_loader_matches_cold(self):
        t1, t2 = two_tables()
        cold = DiscoveryIndex(num_perm=16, bands=8, min_containment=0.1)
        cold.add_table(t1)
        cold.add_table(t2)

        warm = DiscoveryIndex(num_perm=16, bands=8, min_containment=0.1)
        warm.set_entry_loader(lambda name: cold.column_entries(name))
        for table in (t1, t2):
            warm.add_table_hydrated(
                table,
                {
                    column: entry.signature
                    for column, entry in cold.column_entries(table.name).items()
                },
            )
        probe = Table("probe", {"key": ["a", "b"]})
        assert warm.joinable(probe, "key") == cold.joinable(probe, "key")

    def test_hydrated_without_loader_raises_on_query(self):
        t1, _ = two_tables()
        cold = DiscoveryIndex(num_perm=16, bands=8, min_containment=0.1)
        cold.add_table(t1)
        warm = DiscoveryIndex(num_perm=16, bands=8, min_containment=0.1)
        warm.add_table_hydrated(
            t1,
            {
                column: entry.signature
                for column, entry in cold.column_entries("t1").items()
            },
        )
        probe = Table("probe", {"key": ["a", "b", "c"]})
        with pytest.raises(KeyError):
            warm.joinable(probe, "key")


class TestDownSampling:
    def big_table(self):
        values = [f"value_{i:05d}" for i in range(400)]
        return Table("big", {"col": values})

    def test_sample_is_not_lexicographic_prefix(self):
        index = DiscoveryIndex(num_perm=16, bands=8, max_distinct=50, seed=0)
        entry = index.compute_column_entry(self.big_table(), "col")
        assert len(entry.distinct) == 50
        lexicographic = set(sorted(f"value_{i:05d}" for i in range(400))[:50])
        assert entry.distinct != lexicographic

    def test_sample_deterministic(self):
        a = DiscoveryIndex(num_perm=16, bands=8, max_distinct=50, seed=0)
        b = DiscoveryIndex(num_perm=16, bands=8, max_distinct=50, seed=0)
        table = self.big_table()
        ea = a.compute_column_entry(table, "col")
        eb = b.compute_column_entry(table, "col")
        assert ea.distinct == eb.distinct
        assert np.array_equal(ea.signature, eb.signature)

    def test_sample_varies_with_seed(self):
        table = self.big_table()
        a = DiscoveryIndex(num_perm=16, bands=8, max_distinct=50, seed=0)
        b = DiscoveryIndex(num_perm=16, bands=8, max_distinct=50, seed=7)
        assert a.compute_column_entry(table, "col").distinct != b.compute_column_entry(
            table, "col"
        ).distinct

    def test_small_columns_keep_all_values(self):
        index = DiscoveryIndex(num_perm=16, bands=8, max_distinct=50)
        table = Table("small", {"col": ["a", "b", "c"]})
        assert index.compute_column_entry(table, "col").distinct == frozenset(
            {"a", "b", "c"}
        )
