"""Tests for materialization, candidate profiling, and union search."""

import numpy as np
import pytest

from repro.dataframe import Table
from repro.discovery import (
    Augmentation,
    DiscoveryIndex,
    JoinPath,
    JoinStep,
    UnionAugmentation,
    find_union_candidates,
    generate_candidates,
    materialize_candidates,
    profile_candidates,
)
from repro.profiles import default_registry


@pytest.fixture
def corpus():
    zips = [str(i) for i in range(10)]
    crime = Table("crime", {"zipcode": zips, "crimes": [float(i) for i in range(10)]})
    lookup = Table("lookup", {"zipcode": zips, "city": [f"c{i}" for i in range(10)]})
    weather = Table(
        "weather", {"city": [f"c{i}" for i in range(10)], "rain": [i * 1.5 for i in range(10)]}
    )
    return {"crime": crime, "lookup": lookup, "weather": weather}


@pytest.fixture
def base():
    return Table("base", {"zip": [str(i) for i in range(10)], "y": list(range(10))})


class TestMaterialize:
    def test_single_hop_values(self, base, corpus):
        path = JoinPath((JoinStep("zip", "crime", "zipcode"),))
        aug = Augmentation(path, "crimes")
        values = aug.materialize(base, corpus)
        assert values == [float(i) for i in range(10)]

    def test_two_hop_values(self, base, corpus):
        path = JoinPath(
            (
                JoinStep("zip", "lookup", "zipcode"),
                JoinStep("city", "weather", "city"),
            )
        )
        aug = Augmentation(path, "rain")
        values = aug.materialize(base, corpus)
        assert values == [i * 1.5 for i in range(10)]

    def test_unmatched_rows_are_missing(self, corpus):
        base = Table("base", {"zip": ["0", "1", "999"]})
        path = JoinPath((JoinStep("zip", "crime", "zipcode"),))
        values = Augmentation(path, "crimes").materialize(base, corpus)
        assert values[2] is None

    def test_overlap_fraction(self, corpus):
        base = Table("base", {"zip": ["0", "1", "999", "998"]})
        path = JoinPath((JoinStep("zip", "crime", "zipcode"),))
        assert Augmentation(path, "crimes").overlap_fraction(base, corpus) == 0.5

    def test_missing_base_column_raises(self, base, corpus):
        path = JoinPath((JoinStep("nope", "crime", "zipcode"),))
        with pytest.raises(KeyError):
            Augmentation(path, "crimes").materialize(base, corpus)

    def test_missing_corpus_table_raises(self, base):
        path = JoinPath((JoinStep("zip", "ghost", "zipcode"),))
        with pytest.raises(KeyError):
            Augmentation(path, "x").materialize(base, {})

    def test_apply_adds_column(self, base, corpus):
        path = JoinPath((JoinStep("zip", "crime", "zipcode"),))
        aug = Augmentation(path, "crimes")
        out = aug.apply(base, base, corpus)
        assert aug.aug_id in out
        assert out.num_rows == base.num_rows

    def test_apply_idempotent(self, base, corpus):
        path = JoinPath((JoinStep("zip", "crime", "zipcode"),))
        aug = Augmentation(path, "crimes")
        out = aug.apply(aug.apply(base, base, corpus), base, corpus)
        assert out.column_names.count(aug.aug_id) == 1

    def test_apply_requires_alignment(self, base, corpus):
        path = JoinPath((JoinStep("zip", "crime", "zipcode"),))
        aug = Augmentation(path, "crimes")
        with pytest.raises(ValueError, match="alignment"):
            aug.apply(base.head(3), base, corpus)

    def test_materialize_cached(self, base, corpus):
        path = JoinPath((JoinStep("zip", "crime", "zipcode"),))
        aug = Augmentation(path, "crimes")
        assert aug.materialize(base, corpus) is aug.materialize(base, corpus)


class TestGenerateCandidates:
    def test_pipeline(self, base, corpus):
        index = DiscoveryIndex(min_containment=0.5, seed=0).build(corpus.values())
        augs = generate_candidates(base, index, max_hops=2)
        assert augs  # non-empty
        candidates = materialize_candidates(base, augs, corpus)
        assert all(c.overlap > 0 for c in candidates)
        profiled = profile_candidates(
            candidates, base, corpus, default_registry(), seed=0
        )
        for c in profiled:
            assert c.profile_vector.shape == (5,)
            assert np.all(c.profile_vector >= 0) and np.all(c.profile_vector <= 1)

    def test_max_candidates_cap(self, base, corpus):
        index = DiscoveryIndex(min_containment=0.5, seed=0).build(corpus.values())
        augs = generate_candidates(base, index, max_hops=2, max_candidates=2)
        assert len(augs) == 2

    def test_min_overlap_filter(self, corpus):
        base = Table("base", {"zip": ["0", "999", "998", "997"]})
        index = DiscoveryIndex(min_containment=0.1, seed=0).build(corpus.values())
        augs = generate_candidates(base, index, max_hops=1)
        kept = materialize_candidates(base, augs, corpus, min_overlap=0.5)
        assert kept == []


class TestUnions:
    def test_finds_union_compatible(self):
        base = Table("base", {"a": [1], "b": [2]})
        other = Table("other", {"a": [3], "b": [4], "c": [5]})
        corpus = {"base": base, "other": other}
        unions = find_union_candidates(base, corpus)
        assert len(unions) == 1
        assert unions[0].table_name == "other"

    def test_excludes_self(self):
        base = Table("base", {"a": [1]})
        assert find_union_candidates(base, {"base": base}) == []

    def test_threshold(self):
        base = Table("base", {"a": [1], "b": [2]})
        half = Table("half", {"a": [1], "z": [9]})
        corpus = {"half": half}
        assert find_union_candidates(base, corpus, min_shared=0.6) == []
        assert len(find_union_candidates(base, corpus, min_shared=0.5)) == 1

    def test_invalid_threshold(self):
        base = Table("base", {"a": [1]})
        with pytest.raises(ValueError):
            find_union_candidates(base, {}, min_shared=0.0)

    def test_union_apply_appends_rows(self):
        base = Table("base", {"a": [1, 2], "b": [3, 4]})
        other = Table("other", {"a": [9], "c": [7]})
        corpus = {"other": other}
        union = UnionAugmentation("other", 0.5)
        out = union.apply(base, base, corpus)
        assert out.num_rows == 3
        assert out.column("a") == [1, 2, 9]
        assert out.column("b") == [3, 4, None]

    def test_union_materialize_representative(self):
        base = Table("base", {"a": [1, 2, 3]})
        other = Table("other", {"a": [9]})
        union = UnionAugmentation("other", 1.0)
        values = union.materialize(base, {"other": other})
        assert values == [9, None, None]

    def test_union_identity(self):
        assert UnionAugmentation("x", 0.5) == UnionAugmentation("x", 0.9)
        assert UnionAugmentation("x", 0.5) != UnionAugmentation("y", 0.5)
