"""Tests for MinHash and LSH primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import LshIndex, MinHasher, jaccard


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_empty(self):
        assert jaccard(set(), set()) == 0.0

    def test_half(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)


class TestMinHash:
    def test_signature_shape(self):
        sig = MinHasher(num_perm=32).signature({"a", "b"})
        assert sig.shape == (32,)

    def test_identical_sets_identical_signatures(self):
        h = MinHasher(num_perm=32)
        assert np.array_equal(h.signature({"a", "b"}), h.signature({"b", "a"}))

    def test_estimate_tracks_true_jaccard(self):
        h = MinHasher(num_perm=256, seed=0)
        a = {f"v{i}" for i in range(100)}
        b = {f"v{i}" for i in range(50, 150)}  # true jaccard = 50/150
        est = MinHasher.estimate_jaccard(h.signature(a), h.signature(b))
        assert est == pytest.approx(jaccard(a, b), abs=0.12)

    def test_disjoint_sets_low_estimate(self):
        h = MinHasher(num_perm=128, seed=0)
        a = {f"a{i}" for i in range(50)}
        b = {f"b{i}" for i in range(50)}
        assert MinHasher.estimate_jaccard(h.signature(a), h.signature(b)) < 0.1

    def test_empty_set_signature(self):
        sig = MinHasher(num_perm=16).signature(set())
        assert np.all(sig == sig[0])

    def test_num_perm_validation(self):
        with pytest.raises(ValueError):
            MinHasher(num_perm=2)

    def test_shape_mismatch_rejected(self):
        h = MinHasher(num_perm=16)
        with pytest.raises(ValueError):
            MinHasher.estimate_jaccard(h.signature({"a"}), np.zeros(8, dtype=np.uint64))

    @given(st.sets(st.text(min_size=1, max_size=5), min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_self_similarity_is_one(self, values):
        h = MinHasher(num_perm=32, seed=0)
        sig = h.signature(values)
        assert MinHasher.estimate_jaccard(sig, sig) == 1.0


class TestLsh:
    def test_insert_and_query_identical(self):
        h = MinHasher(num_perm=64)
        lsh = LshIndex(num_perm=64, bands=16)
        sig = h.signature({"a", "b", "c"})
        lsh.insert("item", sig)
        assert "item" in lsh.query(sig)

    def test_similar_sets_collide(self):
        h = MinHasher(num_perm=64, seed=0)
        lsh = LshIndex(num_perm=64, bands=32)
        a = {f"v{i}" for i in range(100)}
        b = {f"v{i}" for i in range(5, 100)}  # ~95% jaccard
        lsh.insert("a", h.signature(a))
        assert "a" in lsh.query(h.signature(b))

    def test_dissimilar_sets_rarely_collide(self):
        h = MinHasher(num_perm=64, seed=0)
        lsh = LshIndex(num_perm=64, bands=8)
        a = {f"a{i}" for i in range(100)}
        b = {f"b{i}" for i in range(100)}
        lsh.insert("a", h.signature(a))
        assert "a" not in lsh.query(h.signature(b))

    def test_duplicate_insert_rejected(self):
        h = MinHasher(num_perm=16)
        lsh = LshIndex(num_perm=16, bands=4)
        lsh.insert("x", h.signature({"a"}))
        with pytest.raises(ValueError):
            lsh.insert("x", h.signature({"b"}))

    def test_bands_must_divide(self):
        with pytest.raises(ValueError):
            LshIndex(num_perm=64, bands=7)

    def test_len(self):
        h = MinHasher(num_perm=16)
        lsh = LshIndex(num_perm=16, bands=4)
        lsh.insert("x", h.signature({"a"}))
        lsh.insert("y", h.signature({"b"}))
        assert len(lsh) == 2

    def test_signature_of(self):
        h = MinHasher(num_perm=16)
        lsh = LshIndex(num_perm=16, bands=4)
        sig = h.signature({"a"})
        lsh.insert("x", sig)
        assert np.array_equal(lsh.signature_of("x"), sig)
        with pytest.raises(KeyError):
            lsh.signature_of("missing")


class TestKernelPathEdges:
    """Regression tests for the edges the pre-kernel code special-cased:
    the kernel-backed MinHasher must keep rejecting ``num_perm < 4`` and
    keep the empty-input signatures, in both kernel modes."""

    @pytest.mark.parametrize("num_perm", [0, 1, 2, 3])
    def test_num_perm_below_four_rejected(self, num_perm):
        from repro import kernels

        for mode in kernels.KERNEL_MODES:
            with kernels.force_mode(mode):
                with pytest.raises(ValueError, match="num_perm"):
                    MinHasher(num_perm=num_perm)

    def test_num_perm_four_is_minimum(self):
        assert MinHasher(num_perm=4).signature({"a"}).shape == (4,)

    @pytest.mark.parametrize("empty", [set(), frozenset(), [], ()])
    def test_empty_input_signature_both_modes(self, empty):
        from repro import kernels

        for mode in kernels.KERNEL_MODES:
            with kernels.force_mode(mode):
                sig = MinHasher(num_perm=8).signature(empty)
                assert sig.shape == (8,)
                assert np.all(sig == kernels.MAX_HASH)

    def test_batch_empty_edges_both_modes(self):
        from repro import kernels

        for mode in kernels.KERNEL_MODES:
            with kernels.force_mode(mode):
                h = MinHasher(num_perm=8)
                assert h.signatures([]).shape == (0, 8)
                batch = h.signatures([set(), {"a"}, set()])
                assert np.all(batch[0] == kernels.MAX_HASH)
                assert np.all(batch[2] == kernels.MAX_HASH)
                assert np.array_equal(batch[1], h.signature({"a"}))

    def test_unknown_hash_version_rejected(self):
        with pytest.raises(ValueError, match="hash_version"):
            MinHasher(num_perm=8, hash_version=99)
