"""Tests for the discovery index, join graph, and path enumeration."""

import pytest

from repro.dataframe import Table
from repro.discovery import (
    Augmentation,
    ColumnRef,
    DiscoveryIndex,
    JoinPath,
    JoinStep,
    build_join_graph,
    enumerate_join_paths,
)


@pytest.fixture
def corpus():
    zips = [str(60601 + i) for i in range(30)]
    houses = Table("houses", {"zip": zips, "price": list(range(30))})
    crime = Table(
        "crime",
        {"zipcode": zips, "crimes": [i * 2.0 for i in range(30)]},
    )
    # weather joins to crime via city, not to houses directly (2-hop).
    cities = [f"city{i}" for i in range(30)]
    crime2 = Table(
        "crime_city",
        {"zipcode": zips, "city": cities},
    )
    weather = Table(
        "weather",
        {"city_name": cities, "rainfall": [float(i) for i in range(30)]},
    )
    unrelated = Table("penguins", {"species": ["adelie", "gentoo"], "mass": [1, 2]})
    return {
        t.name: t for t in (houses, crime, crime2, weather, unrelated)
    }


@pytest.fixture
def index(corpus):
    idx = DiscoveryIndex(min_containment=0.5, seed=0)
    for name, table in corpus.items():
        if name != "houses":
            idx.add_table(table)
    return idx


class TestDiscoveryIndex:
    def test_finds_joinable_column(self, corpus, index):
        results = index.joinable(corpus["houses"], "zip")
        refs = {str(r) for r, _ in results}
        assert "crime.zipcode" in refs

    def test_does_not_find_unrelated(self, corpus, index):
        results = index.joinable(corpus["houses"], "zip")
        refs = {r.table for r, _ in results}
        assert "penguins" not in refs

    def test_containment_score_is_one_for_full_match(self, corpus, index):
        results = dict(
            (str(r), s) for r, s in index.joinable(corpus["houses"], "zip")
        )
        assert results["crime.zipcode"] == pytest.approx(1.0)

    def test_exclude_table(self, corpus, index):
        results = index.joinable(corpus["crime"], "zipcode", exclude_table="crime_city")
        assert all(r.table != "crime_city" for r, _ in results)

    def test_duplicate_table_rejected(self, corpus, index):
        with pytest.raises(ValueError):
            index.add_table(corpus["crime"])

    def test_empty_column_returns_nothing(self, index):
        empty = Table("e", {"k": [None, None]})
        assert index.joinable(empty, "k") == []

    def test_joinable_count_positive(self, corpus, index):
        assert index.joinable_count(corpus["houses"]) >= 1

    def test_num_indexed_columns(self, index):
        assert index.num_indexed_columns == 8  # crime(2) + crime_city(2) + weather(2) + penguins(2)


class TestJoinGraph:
    def test_graph_has_edge_between_joinable(self, index):
        graph = build_join_graph(index)
        a = ColumnRef("crime", "zipcode")
        b = ColumnRef("crime_city", "zipcode")
        assert graph.has_edge(a, b)

    def test_all_columns_are_nodes(self, index):
        graph = build_join_graph(index)
        assert graph.number_of_nodes() == 8


class TestEnumeratePaths:
    def test_single_hop_paths(self, corpus, index):
        paths = enumerate_join_paths(corpus["houses"], index, max_hops=1)
        finals = {p.final_table for p in paths}
        assert "crime" in finals
        assert all(p.length == 1 for p in paths)

    def test_two_hop_reaches_weather(self, corpus, index):
        paths = enumerate_join_paths(corpus["houses"], index, max_hops=2)
        finals = {p.final_table for p in paths}
        assert "weather" in finals

    def test_no_cycles_back_to_visited(self, corpus, index):
        paths = enumerate_join_paths(corpus["houses"], index, max_hops=2)
        for path in paths:
            tables = [s.right_table for s in path.steps]
            assert len(tables) == len(set(tables))

    def test_invalid_hops(self, corpus, index):
        with pytest.raises(ValueError):
            enumerate_join_paths(corpus["houses"], index, max_hops=0)


class TestJoinPathTypes:
    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            JoinPath(())

    def test_str_representation(self):
        path = JoinPath((JoinStep("zip", "crime", "zipcode"),))
        assert "crime.zipcode" in str(path)

    def test_augmentation_identity(self):
        path = JoinPath((JoinStep("zip", "crime", "zipcode"),))
        a = Augmentation(path, "crimes")
        b = Augmentation(path, "crimes")
        assert a == b
        assert hash(a) == hash(b)
        assert a != Augmentation(path, "other")
