"""Fixture-file suite for every reprolint checker: each checker gets a
positive (flagged), a negative (clean), and a suppressed fixture; the
baseline path is covered in ``test_baseline.py``.

Fixtures are written into a temp tree shaped like the real repo
(``src/repro/...``) because two checkers scope by module path.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_paths


def lint_tree(tmp_path, files, checks=None):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return lint_paths([tmp_path], root=tmp_path, checks=checks)


def checks_found(result):
    return sorted({f.check for f in result.findings})


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------
class TestLockDiscipline:
    def test_positive_direct_inversion(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "class Engine:\n"
                    "    def a(self):\n"
                    "        with self._catalog_lock:\n"
                    "            with self._lock:\n"
                    "                pass\n"
                    "    def b(self):\n"
                    "        with self._lock:\n"
                    "            with self._catalog_lock:\n"
                    "                pass\n"
                )
            },
            checks=["lock-discipline"],
        )
        assert checks_found(result) == ["lock-discipline"]
        assert "inversion" in result.findings[0].message

    def test_positive_interprocedural_inversion(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "class Engine:\n"
                    "    def a(self):\n"
                    "        with self._catalog_lock:\n"
                    "            with self._lock:\n"
                    "                pass\n"
                    "    def b(self):\n"
                    "        with self._lock:\n"
                    "            self.helper()\n"
                    "    def helper(self):\n"
                    "        with self._catalog_lock:\n"
                    "            pass\n"
                )
            },
            checks=["lock-discipline"],
        )
        assert any(
            "via call to helper()" in f.message for f in result.findings
        )

    def test_positive_bare_acquire(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "class Thing:\n"
                    "    def go(self):\n"
                    "        self._lock.acquire()\n"
                    "        work()\n"
                    "        self._lock.release()\n"
                )
            },
            checks=["lock-discipline"],
        )
        assert len(result.findings) == 1
        assert "bare _lock.acquire()" in result.findings[0].message

    def test_negative_consistent_order_and_guarded_acquire(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "class Engine:\n"
                    "    def a(self):\n"
                    "        with self._catalog_lock:\n"
                    "            with self._lock:\n"
                    "                pass\n"
                    "    def b(self):\n"
                    "        with self._catalog_lock:\n"
                    "            with self._lock:\n"
                    "                pass\n"
                    "    def c(self):\n"
                    "        self._lock.acquire()\n"
                    "        try:\n"
                    "            work()\n"
                    "        finally:\n"
                    "            self._lock.release()\n"
                )
            },
            checks=["lock-discipline"],
        )
        assert result.findings == []

    def test_negative_guard_internals_exempt(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "class KeyedMutexGuard:\n"
                    "    def __enter__(self):\n"
                    "        self._lock.acquire()\n"
                    "        return self\n"
                    "    def __exit__(self, *exc):\n"
                    "        self._lock.release()\n"
                )
            },
            checks=["lock-discipline"],
        )
        assert result.findings == []

    def test_suppressed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "class Thing:\n"
                    "    def go(self):\n"
                    "        self._lock.acquire()  "
                    "# reprolint: disable=lock-discipline\n"
                )
            },
            checks=["lock-discipline"],
        )
        assert result.findings == []
        assert result.suppressed == 1


# ---------------------------------------------------------------------------
# blocking-under-lock
# ---------------------------------------------------------------------------
class TestBlockingUnderLock:
    def test_positive_io_under_mutex(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "import os\n"
                    "class Store:\n"
                    "    def save(self):\n"
                    "        with self._state_lock:\n"
                    "            os.replace('a', 'b')\n"
                )
            },
            checks=["blocking-under-lock"],
        )
        assert len(result.findings) == 1
        assert "os.replace()" in result.findings[0].message
        assert "_state_lock" in result.findings[0].message

    def test_positive_project_io_seams(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "class Store:\n"
                    "    def lease(self):\n"
                    "        with self._writer_lease_guard:\n"
                    "            return self.leases.acquire()\n"
                    "    def blob(self):\n"
                    "        with self._lock:\n"
                    "            return self.backend.read_bytes('p')\n"
                )
            },
            checks=["blocking-under-lock"],
        )
        assert len(result.findings) == 2

    def test_negative_file_locks_are_fine(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "import os\n"
                    "class Store:\n"
                    "    def save(self):\n"
                    "        with self._dir_lock('shard'):\n"
                    "            self.backend.write_bytes('p', b'x')\n"
                    "    def compact(self):\n"
                    "        with self._ilock():\n"
                    "            os.replace('a', 'b')\n"
                )
            },
            checks=["blocking-under-lock"],
        )
        assert result.findings == []

    def test_negative_io_outside_lock(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "import os\n"
                    "class Store:\n"
                    "    def save(self):\n"
                    "        with self._lock:\n"
                    "            payload = self.encode()\n"
                    "        os.replace('a', 'b')\n"
                )
            },
            checks=["blocking-under-lock"],
        )
        assert result.findings == []

    def test_negative_allowlisted_lock(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "src/repro/catalog/refresh.py": (
                    "import time\n"
                    "class Refresher:\n"
                    "    def _cycle(self):\n"
                    "        with self._refresh_lock:\n"
                    "            time.sleep(0.1)\n"
                )
            },
            checks=["blocking-under-lock"],
        )
        assert result.findings == []

    def test_negative_nested_def_not_under_lock(self, tmp_path):
        # A callback defined under a lock runs later, not under it.
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "import os\n"
                    "class Store:\n"
                    "    def save(self):\n"
                    "        with self._lock:\n"
                    "            def done():\n"
                    "                os.replace('a', 'b')\n"
                    "            self.cb = done\n"
                )
            },
            checks=["blocking-under-lock"],
        )
        assert result.findings == []

    def test_suppressed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "import time\n"
                    "class Store:\n"
                    "    def save(self):\n"
                    "        with self._lock:\n"
                    "            time.sleep(1)  "
                    "# reprolint: disable=blocking-under-lock\n"
                )
            },
            checks=["blocking-under-lock"],
        )
        assert result.findings == []
        assert result.suppressed == 1


# ---------------------------------------------------------------------------
# catalog-vfs
# ---------------------------------------------------------------------------
class TestCatalogVfs:
    def test_positive_raw_io_in_catalog(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "src/repro/catalog/store.py": (
                    "import os, shutil\n"
                    "def save(path, data):\n"
                    "    with open(path, 'wb') as fh:\n"
                    "        fh.write(data)\n"
                    "    os.remove(path)\n"
                    "    shutil.copyfile('a', 'b')\n"
                )
            },
            checks=["catalog-vfs"],
        )
        reasons = sorted(f.message for f in result.findings)
        assert len(reasons) == 3
        assert any("builtin open()" in m for m in reasons)
        assert any("os.remove()" in m for m in reasons)
        assert any("shutil.copyfile()" in m for m in reasons)

    def test_negative_backend_module_exempt(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "src/repro/catalog/backend.py": (
                    "import os\n"
                    "def write(path, data):\n"
                    "    with open(path, 'wb') as fh:\n"
                    "        fh.write(data)\n"
                )
            },
            checks=["catalog-vfs"],
        )
        assert result.findings == []

    def test_negative_outside_catalog_package(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "src/repro/core/runner.py": (
                    "def save(path, data):\n"
                    "    with open(path, 'wb') as fh:\n"
                    "        fh.write(data)\n"
                )
            },
            checks=["catalog-vfs"],
        )
        assert result.findings == []

    def test_negative_pure_path_helpers(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "src/repro/catalog/leases.py": (
                    "import os\n"
                    "def lease_path(root, owner):\n"
                    "    os.getpid()\n"
                    "    return os.path.join(root, owner)\n"
                )
            },
            checks=["catalog-vfs"],
        )
        assert result.findings == []

    def test_suppressed_file_wide(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "src/repro/catalog/tool.py": (
                    "# reprolint: disable-file=catalog-vfs\n"
                    "import os\n"
                    "def nuke(path):\n"
                    "    os.remove(path)\n"
                    "    os.unlink(path)\n"
                )
            },
            checks=["catalog-vfs"],
        )
        assert result.findings == []
        assert result.suppressed == 2


# ---------------------------------------------------------------------------
# atomic-write
# ---------------------------------------------------------------------------
class TestAtomicWrite:
    def test_positive_plain_open_on_manifest(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "import json\n"
                    "def save(manifest_path, payload):\n"
                    "    with open(manifest_path, 'w') as fh:\n"
                    "        json.dump(payload, fh)\n"
                )
            },
            checks=["atomic-write"],
        )
        assert len(result.findings) == 1
        assert "non-atomic open" in result.findings[0].message

    def test_positive_write_text_on_snapshot(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "def save(snapshot_path, text):\n"
                    "    snapshot_path.write_text(text)\n"
                )
            },
            checks=["atomic-write"],
        )
        assert len(result.findings) == 1

    def test_positive_os_open_without_append(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "import os\n"
                    "def save(tombstone_log):\n"
                    "    return os.open(tombstone_log, os.O_WRONLY)\n"
                )
            },
            checks=["atomic-write"],
        )
        assert len(result.findings) == 1

    def test_negative_atomic_idioms(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "import os, tempfile\n"
                    "def save(manifest_path, data):\n"
                    "    fd, tmp = tempfile.mkstemp(dir='.')\n"
                    "    with os.fdopen(fd, 'wb') as fh:\n"
                    "        fh.write(data)\n"
                    "    os.replace(tmp, manifest_path)\n"
                    "def append(manifest_log, data):\n"
                    "    return os.open(\n"
                    "        manifest_log,\n"
                    "        os.O_WRONLY | os.O_APPEND | os.O_CREAT,\n"
                    "    )\n"
                    "def read(manifest_path):\n"
                    "    with open(manifest_path) as fh:\n"
                    "        return fh.read()\n"
                )
            },
            checks=["atomic-write"],
        )
        assert result.findings == []

    def test_negative_ordinary_paths(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "def save(report_path, text):\n"
                    "    with open(report_path, 'w') as fh:\n"
                    "        fh.write(text)\n"
                )
            },
            checks=["atomic-write"],
        )
        assert result.findings == []

    def test_suppressed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "def save(manifest_path, text):\n"
                    "    with open(manifest_path, 'w') as fh:  "
                    "# reprolint: disable=atomic-write\n"
                    "        fh.write(text)\n"
                )
            },
            checks=["atomic-write"],
        )
        assert result.findings == []
        assert result.suppressed == 1


# ---------------------------------------------------------------------------
# metrics-hygiene
# ---------------------------------------------------------------------------
class TestMetricsHygiene:
    def test_positive_conflicting_registration(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "a.py": (
                    "def reg(registry):\n"
                    "    registry.counter('repro_ops', 'ops', ('kind',))\n"
                ),
                "b.py": (
                    "def reg(registry):\n"
                    "    registry.counter('repro_ops', 'ops', ('section',))\n"
                ),
            },
            checks=["metrics-hygiene"],
        )
        assert len(result.findings) == 1
        assert "registered with labels" in result.findings[0].message

    def test_positive_kind_conflict(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "a.py": (
                    "def reg(registry):\n"
                    "    registry.counter('repro_depth', 'd')\n"
                    "    registry.gauge('repro_depth', 'd')\n"
                ),
            },
            checks=["metrics-hygiene"],
        )
        assert len(result.findings) == 1
        assert "as gauge here but as counter" in result.findings[0].message

    def test_positive_unbounded_label_value(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "a.py": (
                    "def record(family, table):\n"
                    "    family.labels(table=f'tbl-{table}').inc()\n"
                    "    family.labels(table=str(table)).inc()\n"
                ),
            },
            checks=["metrics-hygiene"],
        )
        assert len(result.findings) == 2

    def test_positive_print_in_library(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "src/repro/api/engine.py": (
                    "def run():\n"
                    "    print('done')\n"
                ),
            },
            checks=["metrics-hygiene"],
        )
        assert len(result.findings) == 1

    def test_negative_clean_metrics(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "a.py": (
                    "def reg(registry):\n"
                    "    registry.counter('repro_ops', 'ops', ('kind',))\n"
                ),
                "b.py": (
                    "def reg(registry):\n"
                    "    registry.counter('repro_ops', 'ops', ('kind',))\n"
                    "    registry.histogram('repro_lat', 'l')\n"
                ),
                "src/repro/cli.py": "print('the CLI may print')\n",
            },
            checks=["metrics-hygiene"],
        )
        assert result.findings == []

    def test_suppressed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "src/repro/api/engine.py": (
                    "def run():\n"
                    "    print('done')  # reprolint: disable=metrics-hygiene\n"
                ),
            },
            checks=["metrics-hygiene"],
        )
        assert result.findings == []
        assert result.suppressed == 1


# ---------------------------------------------------------------------------
# driver-level behavior
# ---------------------------------------------------------------------------
class TestDriver:
    def test_parse_error_is_a_finding(self, tmp_path):
        result = lint_tree(tmp_path, {"bad.py": "def broken(:\n"})
        assert [f.check for f in result.findings] == ["parse-error"]

    def test_unknown_check_raises(self, tmp_path):
        with pytest.raises(KeyError):
            lint_tree(tmp_path, {"a.py": "x = 1\n"}, checks=["no-such"])

    def test_disable_all_suppresses_everything(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "mod.py": (
                    "import time\n"
                    "class Store:\n"
                    "    def save(self):\n"
                    "        with self._lock:\n"
                    "            time.sleep(1)  # reprolint: disable=all\n"
                )
            },
        )
        assert result.findings == []
        assert result.suppressed >= 1

    def test_findings_sorted_and_relative(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "b.py": "print('x')\n",
                "a.py": "print('x')\n",
            },
            checks=["metrics-hygiene"],
        )
        # print() outside repro.* modules is not flagged; shape the tree
        # so both files are library modules.
        assert result.findings == []
        result = lint_tree(
            tmp_path,
            {
                "src/repro/b.py": "print('x')\n",
                "src/repro/a.py": "print('x')\n",
            },
            checks=["metrics-hygiene"],
        )
        assert [f.path for f in result.findings] == [
            "src/repro/a.py",
            "src/repro/b.py",
        ]
