"""Self-checks: the shipped source tree lints clean, the committed
baseline is current, and the analysis package holds itself to its own
rules."""

from pathlib import Path

from repro.analysis import lint_paths, load_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSelfLint:
    def test_analysis_package_lints_itself_clean(self):
        result = lint_paths(
            [REPO_ROOT / "src" / "repro" / "analysis"], root=REPO_ROOT
        )
        assert result.active == [], [f.as_dict() for f in result.active]

    def test_whole_src_tree_lints_clean_against_baseline(self):
        # The acceptance bar for `repro lint` in CI: zero non-baselined
        # findings over src/, and no stale baseline entries.
        entries = load_baseline(REPO_ROOT / "reprolint-baseline.json")
        result = lint_paths(
            [REPO_ROOT / "src"],
            root=REPO_ROOT,
            baseline_entries=entries,
        )
        assert result.active == [], [f.as_dict() for f in result.active]
        assert result.stale_baseline == []

    def test_src_tree_is_actually_scanned(self):
        result = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        # Guard against a silent no-op (wrong root, empty collection):
        # the tree is >100 modules and must stay that way.
        assert result.files_checked > 50
