"""Baseline semantics: ratchet-down, drift both ways, line-move
stability, and the CLI surface of ``repro lint``."""

import json

import pytest

from repro.analysis import (
    default_baseline_path,
    lint_paths,
    load_baseline,
    render_json,
    write_baseline,
)
from repro.cli import main as cli_main

OFFENDER = (
    "import time\n"
    "class Store:\n"
    "    def save(self):\n"
    "        with self._lock:\n"
    "            time.sleep(1)\n"
)


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")


class TestBaseline:
    def test_baselined_finding_does_not_fail(self, tmp_path):
        write_tree(tmp_path, {"mod.py": OFFENDER})
        first = lint_paths([tmp_path], root=tmp_path)
        assert len(first.active) == 1
        baseline = tmp_path / "reprolint-baseline.json"
        write_baseline(baseline, first.findings, first.sources)
        second = lint_paths(
            [tmp_path],
            root=tmp_path,
            baseline_entries=load_baseline(baseline),
        )
        assert second.active == []
        assert len(second.baselined) == 1
        assert second.ok()

    def test_new_finding_still_fails_with_baseline(self, tmp_path):
        write_tree(tmp_path, {"mod.py": OFFENDER})
        first = lint_paths([tmp_path], root=tmp_path)
        baseline = tmp_path / "reprolint-baseline.json"
        write_baseline(baseline, first.findings, first.sources)
        write_tree(
            tmp_path,
            {
                "mod.py": OFFENDER
                + "    def other(self):\n"
                "        with self._lock:\n"
                "            time.sleep(2)\n"
            },
        )
        result = lint_paths(
            [tmp_path],
            root=tmp_path,
            baseline_entries=load_baseline(baseline),
        )
        assert len(result.baselined) == 1
        assert len(result.active) == 1
        assert not result.ok()

    def test_baseline_survives_line_moves(self, tmp_path):
        write_tree(tmp_path, {"mod.py": OFFENDER})
        first = lint_paths([tmp_path], root=tmp_path)
        baseline = tmp_path / "reprolint-baseline.json"
        write_baseline(baseline, first.findings, first.sources)
        # Unrelated lines above shift the finding down; the baseline
        # entry (content-hashed, not line-numbered) must still match.
        write_tree(tmp_path, {"mod.py": "# header\n# comment\n" + OFFENDER})
        result = lint_paths(
            [tmp_path],
            root=tmp_path,
            baseline_entries=load_baseline(baseline),
        )
        assert result.active == []
        assert len(result.baselined) == 1

    def test_fixed_finding_turns_entry_stale(self, tmp_path):
        write_tree(tmp_path, {"mod.py": OFFENDER})
        first = lint_paths([tmp_path], root=tmp_path)
        baseline = tmp_path / "reprolint-baseline.json"
        write_baseline(baseline, first.findings, first.sources)
        write_tree(tmp_path, {"mod.py": "x = 1\n"})
        result = lint_paths(
            [tmp_path],
            root=tmp_path,
            baseline_entries=load_baseline(baseline),
        )
        assert result.active == []
        assert len(result.stale_baseline) == 1
        assert result.ok()  # plain run passes...
        assert not result.ok(check_stale=True)  # ...CI mode fails

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{\"version\": 99}")
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []

    def test_default_baseline_path(self, tmp_path):
        assert (
            default_baseline_path(tmp_path)
            == tmp_path / "reprolint-baseline.json"
        )


class TestCli:
    def run_cli(self, tmp_path, monkeypatch, *argv):
        monkeypatch.chdir(tmp_path)
        return cli_main(["lint", *argv])

    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, {"src/mod.py": "x = 1\n"})
        assert self.run_cli(tmp_path, monkeypatch) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_finding_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, {"src/mod.py": OFFENDER})
        assert self.run_cli(tmp_path, monkeypatch) == 1
        out = capsys.readouterr().out
        assert "blocking-under-lock" in out

    def test_json_report(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, {"src/mod.py": OFFENDER})
        code = self.run_cli(tmp_path, monkeypatch, "--json")
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["active"] == 1
        assert payload["findings"][0]["check"] == "blocking-under-lock"

    def test_json_out_artifact(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, {"src/mod.py": OFFENDER})
        out_file = tmp_path / "report.json"
        self.run_cli(tmp_path, monkeypatch, "--json-out", str(out_file))
        capsys.readouterr()
        payload = json.loads(out_file.read_text())
        assert payload["summary"]["active"] == 1

    def test_update_then_check_baseline_cycle(
        self, tmp_path, monkeypatch, capsys
    ):
        write_tree(tmp_path, {"src/mod.py": OFFENDER})
        assert self.run_cli(tmp_path, monkeypatch, "--update-baseline") == 0
        assert (tmp_path / "reprolint-baseline.json").exists()
        # Baselined: clean run.
        assert self.run_cli(tmp_path, monkeypatch, "--check-baseline") == 0
        # Fix the debt without updating the baseline: stale entry fails
        # CI mode but not the plain run.
        write_tree(tmp_path, {"src/mod.py": "x = 1\n"})
        assert self.run_cli(tmp_path, monkeypatch) == 0
        assert self.run_cli(tmp_path, monkeypatch, "--check-baseline") == 1
        out = capsys.readouterr().out
        assert "stale baseline entry" in out
        # --update-baseline ratchets the file back down.
        assert self.run_cli(tmp_path, monkeypatch, "--update-baseline") == 0
        payload = json.loads(
            (tmp_path / "reprolint-baseline.json").read_text()
        )
        assert payload["entries"] == []

    def test_list_checks(self, tmp_path, monkeypatch, capsys):
        assert self.run_cli(tmp_path, monkeypatch, "--list-checks") == 0
        out = capsys.readouterr().out
        for name in (
            "lock-discipline",
            "blocking-under-lock",
            "catalog-vfs",
            "atomic-write",
            "metrics-hygiene",
        ):
            assert name in out

    def test_select_unknown_check_is_usage_error(
        self, tmp_path, monkeypatch, capsys
    ):
        write_tree(tmp_path, {"src/mod.py": "x = 1\n"})
        assert (
            self.run_cli(tmp_path, monkeypatch, "--select", "bogus") == 2
        )

    def test_missing_path_is_usage_error(self, tmp_path, monkeypatch):
        assert self.run_cli(tmp_path, monkeypatch, "nope/") == 2


class TestReportShape:
    def test_render_json_is_stable(self, tmp_path):
        write_tree(tmp_path, {"src/repro/x.py": "print('hi')\n"})
        result = lint_paths([tmp_path], root=tmp_path)
        payload = render_json(result)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["summary"] == {"active": 1, "baselined": 0}
        (finding,) = payload["findings"]
        assert finding["path"] == "src/repro/x.py"
        assert finding["check"] == "metrics-hygiene"
