"""HTTP front-end semantics: routes, status codes, error mapping, SSE.

These tests go through a real socket (``serve`` on an ephemeral port)
with stdlib ``http.client`` so the SSE cases can read the stream
incrementally and drop connections mid-stream.
"""

import http.client
import json

import pytest

from repro.server import ServiceConfig, serve


class Client:
    """Tiny JSON-over-HTTP client against one test server."""

    def __init__(self, server):
        host, port = server.server_address[:2]
        self.host = host
        self.port = port

    def request(self, method, path, body=None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            content_type = response.headers.get("Content-Type", "")
            data = (
                json.loads(raw)
                if raw and content_type.startswith("application/json")
                else raw
            )
            return response.status, data, dict(response.headers)
        finally:
            conn.close()

    def stream(self, path):
        """Open an SSE stream; caller reads frames and closes the conn."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        conn.request("GET", path)
        response = conn.getresponse()
        assert response.status == 200
        assert response.headers["Content-Type"] == "text/event-stream"
        return conn, response


def read_frame(response):
    """Parse one SSE frame off the wire; ``None`` at end of stream."""
    frame = {}
    while True:
        line = response.readline()
        if not line:  # EOF: server closed the stream
            return frame or None
        line = line.decode("utf-8").rstrip("\n")
        if not line:  # blank line terminates a frame
            if frame:
                return frame
            continue
        field, _, value = line.partition(":")
        value = value.lstrip(" ")
        frame[field] = json.loads(value) if field == "data" else value


def read_all_frames(response):
    frames = []
    while True:
        frame = read_frame(response)
        if frame is None:
            return frames
        frames.append(frame)


@pytest.fixture
def served(harness):
    server = serve(harness.service)
    yield harness, Client(server)
    server.shutdown()
    server.server_close()


@pytest.fixture
def make_served(make_harness):
    servers = []

    def _make(**kwargs):
        h = make_harness(**kwargs)
        server = serve(h.service)
        servers.append(server)
        return h, Client(server)

    yield _make
    for server in servers:
        server.shutdown()
        server.server_close()


def open_session(client, tenant="acme"):
    status, body, _ = client.request(
        "POST", "/v1/sessions", {"tenant": tenant}
    )
    assert status == 201
    return body["session"]["session_id"]


def submit(client, sid, payload, priority=None):
    body = {"session": sid, "request": payload}
    if priority is not None:
        body["priority"] = priority
    status, out, headers = client.request("POST", "/v1/runs", body)
    return status, out, headers


class TestRoutes:
    def test_healthz(self, served):
        _, client = served
        status, body, _ = client.request("GET", "/healthz")
        assert status == 200
        assert body == {"schema_version": 1, "status": "ok"}

    def test_session_lifecycle(self, served):
        _, client = served
        status, body, _ = client.request(
            "POST", "/v1/sessions", {"schema_version": 1, "tenant": "acme"}
        )
        assert status == 201
        sid = body["session"]["session_id"]
        assert body["session"]["tenant"] == "acme"

        status, body, _ = client.request("GET", f"/v1/sessions/{sid}")
        assert status == 200
        assert body["session"]["session_id"] == sid

        status, body, _ = client.request("DELETE", f"/v1/sessions/{sid}")
        assert status == 200

        status, body, _ = client.request("GET", f"/v1/sessions/{sid}")
        assert status == 404
        assert body["error"]["code"] == "not-found"

    def test_submit_and_poll_to_completion(self, served):
        harness, client = served
        sid = open_session(client)
        status, body, _ = submit(client, sid, harness.payload(queries=2))
        assert status == 202
        run_id = body["run"]["run_id"]
        assert body["run"]["state"] in ("queued", "running")

        harness.wait_terminal(run_id)
        status, body, _ = client.request("GET", f"/v1/runs/{run_id}")
        assert status == 200
        run = body["run"]
        assert run["state"] == "completed"
        assert run["record"]["status"] == "completed"
        assert run["record"]["result"]["utility"] == pytest.approx(0.9)

    def test_delete_cancels_run(self, served):
        harness, client = served
        sid = open_session(client)
        _, body, _ = submit(client, sid, harness.payload(hold="g", queries=4))
        run_id = body["run"]["run_id"]
        harness.wait_started("g")
        status, body, _ = client.request("DELETE", f"/v1/runs/{run_id}")
        assert status == 200
        harness.release("g")
        assert harness.wait_terminal(run_id)["state"] == "cancelled"

    def test_metrics_exposition_has_tenant_labels(self, served):
        harness, client = served
        sid = open_session(client, tenant="acme")
        _, body, _ = submit(client, sid, harness.payload())
        harness.wait_terminal(body["run"]["run_id"])
        status, text, headers = client.request("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        exposition = text.decode("utf-8")
        assert 'repro_server_requests_total{tenant="acme",outcome="accepted"}' in exposition
        assert 'repro_server_runs_total{tenant="acme",status="completed"}' in exposition
        # Engine families share the registry: one scrape, both layers.
        assert "repro_engine_runs_total" in exposition


class TestErrorMapping:
    def test_unknown_run_is_404(self, served):
        _, client = served
        status, body, _ = client.request("GET", "/v1/runs/run-424242")
        assert status == 404
        assert body["error"]["code"] == "not-found"
        assert body["error"]["http_status"] == 404

    def test_unknown_route_is_404(self, served):
        _, client = served
        status, body, _ = client.request("GET", "/v2/everything")
        assert status == 404

    def test_bad_request_is_400(self, served):
        harness, client = served
        sid = open_session(client)
        status, body, _ = submit(
            client, sid, {"base": "no-such-table", "task": "stub-task"}
        )
        assert status == 400
        assert body["error"]["code"] == "invalid-request"

    def test_missing_request_field_is_400(self, served):
        _, client = served
        sid = open_session(client)
        status, body, _ = client.request("POST", "/v1/runs", {"session": sid})
        assert status == 400
        assert "request" in body["error"]["message"]

    def test_wrong_schema_version_is_400(self, served):
        _, client = served
        status, body, _ = client.request(
            "POST", "/v1/sessions", {"schema_version": 99, "tenant": "acme"}
        )
        assert status == 400
        assert "schema_version" in body["error"]["message"]

    def test_empty_body_is_400(self, served):
        _, client = served
        status, body, _ = client.request("POST", "/v1/sessions")
        assert status == 400

    def test_unsupported_method_is_400(self, served):
        _, client = served
        sid = open_session(client)
        status, _, _ = client.request("POST", f"/v1/sessions/{sid}", {})
        assert status == 400

    def test_quota_exceeded_is_429_with_retry_after(self, make_served):
        harness, client = make_served(
            config=ServiceConfig(tenant_rate=0.0, tenant_burst=1.0)
        )
        sid = open_session(client)
        status, _, _ = submit(client, sid, harness.payload())
        assert status == 202
        status, body, headers = submit(client, sid, harness.payload(seed=1))
        assert status == 429
        assert body["error"]["code"] == "overloaded"
        assert float(headers["Retry-After"]) >= 0.0

    def test_draining_is_429(self, served):
        harness, client = served
        sid = open_session(client)
        harness.service.shutdown(timeout=5)
        status, body, _ = submit(client, sid, harness.payload())
        assert status == 429
        assert body["error"]["code"] == "overloaded"


class TestSSE:
    """Satellite 4: the event-stream contract, over a real socket."""

    def test_events_arrive_in_order(self, served):
        harness, client = served
        sid = open_session(client)
        _, body, _ = submit(client, sid, harness.payload(queries=3))
        run_id = body["run"]["run_id"]
        conn, response = client.stream(f"/v1/runs/{run_id}/events")
        try:
            frames = read_all_frames(response)
        finally:
            conn.close()
        kinds = [f["event"] for f in frames]
        assert kinds[0] == "run-started"
        assert kinds[-1] == "run-completed"
        assert kinds.count("query-issued") == 3
        # Sequence ids are contiguous and frame data matches the kind.
        assert [int(f["id"]) for f in frames] == list(range(len(frames)))
        assert all(f["data"]["kind"] == f["event"] for f in frames)
        indexes = [
            f["data"]["query_index"]
            for f in frames
            if f["event"] == "query-issued"
        ]
        assert indexes == sorted(indexes)

    def test_stream_closes_after_completion(self, served):
        harness, client = served
        sid = open_session(client)
        _, body, _ = submit(client, sid, harness.payload())
        run_id = body["run"]["run_id"]
        harness.wait_terminal(run_id)
        conn, response = client.stream(f"/v1/runs/{run_id}/events")
        try:
            frames = read_all_frames(response)
            assert frames[-1]["event"] == "run-completed"
            # EOF, not a hang: the server closed the stream.
            assert response.read() == b""
        finally:
            conn.close()

    def test_disconnect_cancels_nothing(self, served):
        harness, client = served
        sid = open_session(client)
        _, body, _ = submit(client, sid, harness.payload(hold="g", queries=2))
        run_id = body["run"]["run_id"]
        harness.wait_started("g")
        conn, response = client.stream(f"/v1/runs/{run_id}/events")
        first = read_frame(response)
        assert first["event"] == "run-started"
        conn.close()  # subscriber walks away mid-run
        harness.release("g")
        assert harness.wait_terminal(run_id)["state"] == "completed"

    def test_delete_mid_stream_ends_with_cancelled_event(self, served):
        harness, client = served
        sid = open_session(client)
        _, body, _ = submit(client, sid, harness.payload(hold="g", queries=5))
        run_id = body["run"]["run_id"]
        harness.wait_started("g")
        conn, response = client.stream(f"/v1/runs/{run_id}/events")
        try:
            assert read_frame(response)["event"] == "run-started"
            status, _, _ = client.request("DELETE", f"/v1/runs/{run_id}")
            assert status == 200
            harness.release("g")
            frames = read_all_frames(response)
            assert frames, "stream must end with a terminal event"
            assert frames[-1]["event"] == "run-completed"
            assert frames[-1]["data"]["status"] == "cancelled"
        finally:
            conn.close()

    def test_stream_for_unknown_run_is_clean_404(self, served):
        _, client = served
        status, body, _ = client.request("GET", "/v1/runs/run-424242/events")
        assert status == 404
        assert body["error"]["code"] == "not-found"
