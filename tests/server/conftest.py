"""Shared harness for the server tests: a controllable stub engine.

The server's semantics (admission, fairness, cancellation, streaming)
are independent of what a searcher computes, so these tests drive a
stub searcher whose behavior is scripted per-request through
``DiscoveryRequest.options``:

``tag``
    Name recorded in ``harness.run_log`` when the searcher executes —
    execution order is what the fairness tests assert on.
``queries``
    Utility queries to issue (each one is a cancellation point).
``hold``
    Name of a gate the searcher parks on before its first query;
    ``harness.release(name)`` lets it proceed.  While parked the run
    occupies an engine worker, which is how tests fill the pool
    deterministically.
``explode``
    Raise ``RuntimeError`` instead of returning a result.
"""

import threading

import pytest

from repro.api import DiscoveryEngine
from repro.core.result import SearchResult
from repro.data import generate_corpus
from repro.server import DiscoveryService, ServiceConfig


class StubTask:
    name = "stub-task"


class _Hooks:
    """Minimal query-engine hook surface the engine wires events into."""

    def __init__(self):
        self.pre_query = None
        self.on_query = None
        self.on_accept = None
        self.queries = 0


class StubSearcher:
    def __init__(self, harness, *, tag=None, queries=1, hold=None, explode=False):
        self.engine = _Hooks()
        self._harness = harness
        self._tag = tag
        self._queries = int(queries)
        self._hold = hold
        self._explode = explode

    def run(self):
        if self._tag is not None:
            self._harness.run_log.append(self._tag)
        if self._hold is not None:
            started = self._harness.gate(f"{self._hold}:started")
            started.set()
            assert self._harness.gate(self._hold).wait(timeout=60), (
                f"gate {self._hold!r} never released"
            )
        if self._explode:
            raise RuntimeError("stub searcher exploded on request")
        best = 0.0
        for index in range(1, self._queries + 1):
            if self.engine.pre_query is not None:
                self.engine.pre_query()  # the cancellation point
            self.engine.queries += 1
            value = 0.5 + 0.4 * index / self._queries
            best = max(best, value)
            if self.engine.on_query is not None:
                self.engine.on_query(index, value, best)
        return SearchResult(
            searcher="stub",
            selected=["aug-1"],
            utility=best,
            base_utility=0.5,
            queries=self._queries,
            trace=[(self._queries, best)],
        )


class ServerHarness:
    """One stub-backed service plus the knobs tests steer it with."""

    def __init__(
        self,
        *,
        max_workers=1,
        config=None,
        metrics=None,
        clock=None,
        catalogs=("default",),
    ):
        self.corpus = generate_corpus(3, seed=0)
        self.base_name = self.corpus[0].name
        self.run_log = []
        self.factory_calls = 0
        self._gates = {}
        self._gates_lock = threading.Lock()
        self.max_workers = max_workers
        kwargs = {}
        if metrics is not None:
            kwargs["metrics"] = metrics
        if clock is not None:
            kwargs["clock"] = clock
        self.service = DiscoveryService(
            {name: self._factory for name in catalogs},
            config=config
            or ServiceConfig(tenant_rate=0.0, tenant_burst=10_000.0),
            **kwargs,
        )

    def _factory(self, metrics=None):
        self.factory_calls += 1
        engine = DiscoveryEngine(
            corpus=self.corpus,
            metrics=metrics,
            max_workers=self.max_workers,
            result_cache_bytes=0,
        )
        engine.tasks.register("stub-task", lambda **_options: StubTask())
        engine.searchers.register(
            "stub",
            lambda candidates, base, corpus, task, *, theta, query_budget,
            seed, config=None, **options: StubSearcher(self, **options),
        )
        return engine

    def gate(self, name) -> threading.Event:
        with self._gates_lock:
            event = self._gates.get(name)
            if event is None:
                event = self._gates[name] = threading.Event()
            return event

    def release(self, name) -> None:
        self.gate(name).set()

    def wait_started(self, hold_name, timeout=60) -> None:
        assert self.gate(f"{hold_name}:started").wait(timeout=timeout), (
            f"run holding {hold_name!r} never started"
        )

    def payload(self, *, tag=None, queries=1, hold=None, explode=False, seed=0):
        options = {"queries": queries}
        if tag is not None:
            options["tag"] = tag
        if hold is not None:
            options["hold"] = hold
        if explode:
            options["explode"] = True
        return {
            "base": self.base_name,
            "task": "stub-task",
            "searcher": "stub",
            "seed": seed,
            "options": options,
        }

    def session(self, tenant="acme", catalog=None) -> str:
        return self.service.create_session(tenant, catalog)["session_id"]

    def wait_terminal(self, run_id, timeout=60) -> dict:
        """Block until the run is terminal (via its event stream), then
        return its status."""
        for _ in self.service.events(run_id, timeout=timeout):
            pass
        status = self.service.status(run_id)
        assert status["state"] in ("completed", "cancelled", "failed")
        return status

    def close(self) -> None:
        # Release every gate so no parked searcher outlives the test.
        with self._gates_lock:
            for event in self._gates.values():
                event.set()
        self.service.shutdown(timeout=10)


@pytest.fixture
def harness():
    h = ServerHarness()
    yield h
    h.close()


@pytest.fixture
def make_harness():
    made = []

    def _make(**kwargs):
        h = ServerHarness(**kwargs)
        made.append(h)
        return h

    yield _make
    for h in made:
        h.close()
