"""DiscoveryService semantics: admission, quotas, fairness, lifecycle,
drain — everything the HTTP layer relies on, tested without a socket."""

import threading

import pytest

from repro.api.errors import InvalidRequest, NotFound, Overloaded
from repro.server import ServiceConfig, TokenBucket


class TestSessions:
    def test_create_get_close(self, harness):
        created = harness.service.create_session("acme")
        sid = created["session_id"]
        assert created["tenant"] == "acme"
        assert created["catalog"] == "default"
        assert harness.service.get_session(sid) == created
        assert harness.service.close_session(sid)["session_id"] == sid
        with pytest.raises(NotFound):
            harness.service.get_session(sid)

    def test_sessions_share_one_engine_per_catalog(self, harness):
        harness.session("acme")
        harness.session("globex")
        assert harness.factory_calls == 1
        assert harness.service.stats()["catalogs"]["default"]["engine_built"]

    def test_invalid_tenant_rejected(self, harness):
        for bad in ("", None, "a b", "x" * 65, "sneaky\n"):
            with pytest.raises(InvalidRequest):
                harness.service.create_session(bad)

    def test_unknown_catalog_rejected(self, harness):
        with pytest.raises(NotFound):
            harness.service.create_session("acme", "nope")

    def test_multi_catalog_requires_explicit_name(self, make_harness):
        h = make_harness(catalogs=("red", "blue"))
        with pytest.raises(InvalidRequest):
            h.service.create_session("acme")
        assert h.service.create_session("acme", "blue")["catalog"] == "blue"

    def test_session_cap(self, make_harness):
        h = make_harness(
            config=ServiceConfig(
                tenant_rate=0.0, tenant_burst=100.0, max_sessions=2
            )
        )
        h.session("a")
        h.session("b")
        with pytest.raises(Overloaded):
            h.session("c")


class TestAdmission:
    def test_quota_exhausted_gets_overloaded(self, make_harness):
        h = make_harness(
            config=ServiceConfig(tenant_rate=0.0, tenant_burst=2.0)
        )
        sid = h.session("acme")
        h.service.submit(sid, h.payload())
        h.service.submit(sid, h.payload(seed=1))
        with pytest.raises(Overloaded) as exc:
            h.service.submit(sid, h.payload(seed=2))
        assert exc.value.http_status == 429
        assert exc.value.retry_after >= 0.0

    def test_quota_refills_with_clock(self, make_harness):
        clock = [0.0]
        h = make_harness(
            config=ServiceConfig(tenant_rate=1.0, tenant_burst=1.0),
            clock=lambda: clock[0],
        )
        sid = h.session("acme")
        h.service.submit(sid, h.payload())
        with pytest.raises(Overloaded) as exc:
            h.service.submit(sid, h.payload(seed=1))
        assert exc.value.retry_after == pytest.approx(1.0)
        clock[0] = 1.5
        h.service.submit(sid, h.payload(seed=2))

    def test_quotas_are_per_tenant(self, make_harness):
        h = make_harness(
            config=ServiceConfig(tenant_rate=0.0, tenant_burst=1.0)
        )
        acme, globex = h.session("acme"), h.session("globex")
        h.service.submit(acme, h.payload())
        with pytest.raises(Overloaded):
            h.service.submit(acme, h.payload(seed=1))
        h.service.submit(globex, h.payload(seed=2))  # unaffected

    def test_queue_budget_rejects_with_429(self, make_harness):
        h = make_harness(
            config=ServiceConfig(
                tenant_rate=0.0, tenant_burst=100.0, max_queue_depth=2
            )
        )
        sid = h.session("acme")
        h.service.submit(sid, h.payload(hold="g", tag="running"))
        h.wait_started("g")  # occupies the single worker
        h.service.submit(sid, h.payload(seed=1))
        h.service.submit(sid, h.payload(seed=2))
        with pytest.raises(Overloaded) as exc:
            h.service.submit(sid, h.payload(seed=3))
        assert exc.value.http_status == 429

    def test_quota_refusal_never_consumes_queue(self, make_harness):
        """A rate-limited tenant must not eat the queue budget others
        share (quota gate fires before the queue gate)."""
        h = make_harness(
            config=ServiceConfig(
                tenant_rate=0.0, tenant_burst=1.0, max_queue_depth=1
            )
        )
        noisy, quiet = h.session("noisy"), h.session("quiet")
        h.service.submit(noisy, h.payload(hold="g"))
        h.wait_started("g")
        for seed in range(5):
            with pytest.raises(Overloaded):
                h.service.submit(noisy, h.payload(seed=seed + 1))
        # The queue is still empty: the quiet tenant gets the slot.
        run = h.service.submit(quiet, h.payload(seed=99))
        assert run["state"] == "queued"

    def test_invalid_request_never_queued(self, harness):
        sid = harness.session()
        with pytest.raises(InvalidRequest):
            harness.service.submit(sid, {"base": "no-such-table", "task": "t"})
        with pytest.raises(InvalidRequest):
            harness.service.submit(sid, harness.payload(), priority="high")
        assert harness.service.list_runs() == []

    def test_unknown_session_rejected(self, harness):
        with pytest.raises(NotFound):
            harness.service.submit("s-999999", harness.payload())


class TestFairness:
    def test_round_robin_across_tenants(self, make_harness):
        """With one worker and two backlogged tenants, dispatch must
        interleave — a tenant that queued first does not drain first."""
        h = make_harness()
        acme, globex = h.session("acme"), h.session("globex")
        h.service.submit(acme, h.payload(tag="a1", hold="g"))
        h.wait_started("g")
        ids = [
            h.service.submit(acme, h.payload(tag="a2", seed=1))["run_id"],
            h.service.submit(acme, h.payload(tag="a3", seed=2))["run_id"],
            h.service.submit(globex, h.payload(tag="b1", seed=3))["run_id"],
            h.service.submit(globex, h.payload(tag="b2", seed=4))["run_id"],
        ]
        h.release("g")
        for run_id in ids:
            h.wait_terminal(run_id)
        assert h.run_log == ["a1", "b1", "a2", "b2", "a3"]

    def test_priority_within_tenant(self, make_harness):
        h = make_harness()
        sid = h.session("acme")
        h.service.submit(sid, h.payload(tag="first", hold="g"))
        h.wait_started("g")
        low = h.service.submit(sid, h.payload(tag="low", seed=1), priority=0)
        high = h.service.submit(
            sid, h.payload(tag="high", seed=2), priority=5
        )
        h.release("g")
        h.wait_terminal(low["run_id"])
        h.wait_terminal(high["run_id"])
        assert h.run_log == ["first", "high", "low"]


class TestLifecycle:
    def test_run_completes_with_record(self, harness):
        sid = harness.session()
        run = harness.service.submit(sid, harness.payload(queries=3))
        status = harness.wait_terminal(run["run_id"])
        assert status["state"] == "completed"
        record = status["record"]
        assert record["status"] == "completed"
        assert record["result"]["utility"] == pytest.approx(0.9)
        kinds = [e["kind"] for e in record["events"]]
        assert kinds[0] == "run-started"
        assert kinds[-1] == "run-completed"
        assert kinds.count("query-issued") == 3

    def test_events_stream_in_order_with_terminal(self, harness):
        sid = harness.session()
        run = harness.service.submit(sid, harness.payload(queries=2))
        events = list(harness.service.events(run["run_id"], timeout=60))
        kinds = [e.kind for e in events]
        assert kinds[0] == "run-started"
        assert kinds[-1] == "run-completed"
        indexes = [e.query_index for e in events if e.kind == "query-issued"]
        assert indexes == sorted(indexes)

    def test_cancel_queued_run_synthesizes_terminal_event(self, harness):
        sid = harness.session()
        harness.service.submit(sid, harness.payload(hold="g"))
        harness.wait_started("g")
        queued = harness.service.submit(sid, harness.payload(seed=1))
        cancelled = harness.service.cancel(queued["run_id"])
        assert cancelled["state"] == "cancelled"
        events = list(harness.service.events(queued["run_id"], timeout=10))
        assert [e.kind for e in events] == ["run-completed"]
        assert events[0].status == "cancelled"
        harness.release("g")

    def test_cancel_running_run(self, harness):
        sid = harness.session()
        run = harness.service.submit(
            sid, harness.payload(hold="g", queries=5)
        )
        harness.wait_started("g")
        harness.service.cancel(run["run_id"])
        harness.release("g")  # searcher proceeds into its cancel point
        status = harness.wait_terminal(run["run_id"])
        assert status["state"] == "cancelled"
        # The engine recorded the cancelled run itself — no synthesis.
        assert status["record"]["status"] == "cancelled"
        assert status["record"]["result"] is None

    def test_cancel_is_idempotent(self, harness):
        sid = harness.session()
        run = harness.service.submit(sid, harness.payload())
        harness.wait_terminal(run["run_id"])
        again = harness.service.cancel(run["run_id"])
        assert again["state"] == "completed"  # terminal states stick

    def test_failed_run_reports_typed_error(self, harness):
        sid = harness.session()
        run = harness.service.submit(sid, harness.payload(explode=True))
        status = harness.wait_terminal(run["run_id"])
        assert status["state"] == "failed"
        assert status["error"]["code"] == "internal"
        assert "exploded" in status["error"]["message"]

    def test_unknown_run_ids(self, harness):
        with pytest.raises(NotFound):
            harness.service.status("run-424242")
        with pytest.raises(NotFound):
            harness.service.cancel("run-424242")
        with pytest.raises(NotFound):
            list(harness.service.events("run-424242"))

    def test_subscriber_timeout_raises(self, harness):
        sid = harness.session()
        run = harness.service.submit(sid, harness.payload(hold="g"))
        harness.wait_started("g")
        stream = harness.service.events(run["run_id"], timeout=0.05)
        with pytest.raises(TimeoutError):
            # run-started arrives, then the held run goes quiet.
            for _ in stream:
                pass
        harness.release("g")


class TestDrain:
    def test_drain_cancels_queued_and_waits_for_running(self, make_harness):
        h = make_harness()
        sid = h.session("acme")
        running = h.service.submit(sid, h.payload(hold="g"))
        h.wait_started("g")
        queued = h.service.submit(sid, h.payload(seed=1))
        verdict = []
        drainer = threading.Thread(
            target=lambda: verdict.append(h.service.shutdown(timeout=30))
        )
        drainer.start()
        # The queued run is cancelled immediately, before the wait.
        status = h.wait_terminal(queued["run_id"], timeout=10)
        assert status["state"] == "cancelled"
        h.release("g")
        drainer.join(timeout=30)
        assert verdict == [True]
        assert h.service.status(running["run_id"])["state"] == "completed"

    def test_drain_refuses_new_work(self, harness):
        sid = harness.session()
        harness.service.shutdown(timeout=5)
        with pytest.raises(Overloaded):
            harness.service.submit(sid, harness.payload())
        with pytest.raises(Overloaded):
            harness.service.create_session("late")

    def test_drain_timeout_reports_unclean(self, make_harness):
        h = make_harness()
        sid = h.session("acme")
        h.service.submit(sid, h.payload(hold="g"))
        h.wait_started("g")
        assert h.service.shutdown(timeout=0.1) is False
        h.release("g")


class TestTokenBucket:
    def test_burst_then_deny(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: clock[0])
        assert all(bucket.try_acquire()[0] for _ in range(3))
        ok, retry = bucket.try_acquire()
        assert not ok
        assert retry == pytest.approx(0.5)
        clock[0] = 0.5
        assert bucket.try_acquire()[0]

    def test_refill_caps_at_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: clock[0])
        clock[0] = 100.0
        assert bucket.try_acquire()[0]
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]

    def test_zero_rate_never_refills(self):
        clock = [0.0]
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=lambda: clock[0])
        assert bucket.try_acquire()[0]
        clock[0] = 1e9
        ok, retry = bucket.try_acquire()
        assert not ok
        assert retry == float("inf")

    def test_oversized_request_is_unservable(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        ok, retry = bucket.try_acquire(5.0)
        assert not ok
        assert retry == float("inf")
