"""``repro serve`` end to end: a real subprocess, a real port, the full
submit → status → events → cancel → metrics round-trip, and a SIGINT
drain.  This is the same loop the CI server-smoke job runs."""

import http.client
import json
import os
import signal
import subprocess
import sys
import time

import pytest

SERVE_ARGS = [
    sys.executable,
    "-m",
    "repro",
    "serve",
    "--scenario",
    "clustering",
    "--seed",
    "0",
    "--port",
    "0",
    "--workers",
    "2",
]


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env["PYTHONUNBUFFERED"] = "1"
    return env


@pytest.fixture(scope="module")
def server():
    process = subprocess.Popen(
        SERVE_ARGS,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_env(),
    )
    url = None
    deadline = time.monotonic() + 120
    try:
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            if " on http://" in line:
                url = line.rsplit(" on ", 1)[1].strip()
                break
        if url is None:
            process.kill()
            _, err = process.communicate(timeout=10)
            pytest.fail(f"serve never announced its URL; stderr: {err}")
        host, port = url.removeprefix("http://").rsplit(":", 1)
        yield process, host, int(port)
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                process.kill()


def call(host, port, method, path, body=None):
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        data = (
            json.loads(raw)
            if response.headers.get("Content-Type", "").startswith(
                "application/json"
            )
            else raw
        )
        return response.status, data
    finally:
        conn.close()


def wait_terminal(host, port, run_id, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = call(host, port, "GET", f"/v1/runs/{run_id}")
        assert status == 200
        if body["run"]["state"] in ("completed", "cancelled", "failed"):
            return body["run"]
        time.sleep(0.2)
    pytest.fail(f"run {run_id} never reached a terminal state")


REQUEST = {
    "base": "raw_materials",
    "task": "scenario-task",
    "searcher": "metam",
    "theta": 0.6,
    "query_budget": 25,
    "seed": 0,
}


class TestServeRoundTrip:
    def test_full_round_trip(self, server):
        _, host, port = server
        status, body = call(host, port, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"

        status, body = call(
            host, port, "POST", "/v1/sessions", {"tenant": "smoke"}
        )
        assert status == 201
        sid = body["session"]["session_id"]

        status, body = call(
            host, port, "POST", "/v1/runs",
            {"session": sid, "request": REQUEST},
        )
        assert status == 202
        run = wait_terminal(host, port, body["run"]["run_id"])
        assert run["state"] == "completed"
        assert run["record"]["result"]["utility"] > 0

        # The finished stream replays in order and terminates.
        status, raw = call(
            host, port, "GET", f"/v1/runs/{run['run_id']}/events"
        )
        assert status == 200
        text = raw.decode("utf-8")
        assert text.startswith("event: run-started\n")
        assert "event: run-completed\n" in text

        # Cancel a second run mid-flight (cooperative, may also finish).
        status, body = call(
            host, port, "POST", "/v1/runs",
            {"session": sid, "request": dict(REQUEST, seed=1)},
        )
        assert status == 202
        status, _ = call(
            host, port, "DELETE", f"/v1/runs/{body['run']['run_id']}"
        )
        assert status == 200
        assert wait_terminal(host, port, body["run"]["run_id"])["state"] in (
            "cancelled",
            "completed",
        )

        status, raw = call(host, port, "GET", "/metrics")
        assert status == 200
        exposition = raw.decode("utf-8")
        assert 'tenant="smoke"' in exposition
        assert "repro_server_runs_total" in exposition
        assert "repro_engine_runs_total" in exposition

    def test_errors_speak_the_taxonomy(self, server):
        _, host, port = server
        status, body = call(host, port, "GET", "/v1/runs/run-424242")
        assert status == 404
        assert body["error"]["code"] == "not-found"

    def test_sigint_drains_cleanly(self, server):
        process, host, port = server
        process.send_signal(signal.SIGINT)
        out, err = process.communicate(timeout=60)
        assert process.returncode == 0, f"unclean drain: {err}"
