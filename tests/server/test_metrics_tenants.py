"""Satellite: per-tenant metric labels must respect the registry's
cardinality guardrail — tenant churn collapses into ``_other_`` instead
of growing the exposition without bound."""

import pytest

from repro.obs.metrics import OVERFLOW_LABEL, MetricsRegistry


def _series(exposition, family):
    return [
        line
        for line in exposition.splitlines()
        if line.startswith(family + "{")
    ]


class TestBoundedTenantLabels:
    def test_tenant_churn_collapses_into_other(self, make_harness):
        registry = MetricsRegistry(max_series_per_metric=4)
        h = make_harness(metrics=registry)
        run_ids = []
        for index in range(12):  # 12 tenants against a 4-series budget
            sid = h.session(f"tenant-{index:02d}")
            run_ids.append(h.service.submit(sid, h.payload())["run_id"])
        for run_id in run_ids:
            assert h.wait_terminal(run_id)["state"] == "completed"

        exposition = h.service.metrics_prometheus()
        for family in (
            "repro_server_requests_total",
            "repro_server_runs_total",
        ):
            series = _series(exposition, family)
            assert series, f"{family} missing from exposition"
            # Bounded at the budget plus the single overflow series.
            assert len(series) <= 4 + 1
            overflow = [s for s in series if OVERFLOW_LABEL in s]
            assert overflow, (
                f"{family} must collapse churned tenants into "
                f"{OVERFLOW_LABEL!r}, got: {series}"
            )

    def test_overflow_series_accumulates(self, make_harness):
        registry = MetricsRegistry(max_series_per_metric=2)
        h = make_harness(metrics=registry)
        for index in range(6):
            sid = h.session(f"churn-{index}")
            h.wait_terminal(h.service.submit(sid, h.payload())["run_id"])
        exposition = h.service.metrics_prometheus()
        overflow = [
            line
            for line in _series(exposition, "repro_server_requests_total")
            if OVERFLOW_LABEL in line
        ]
        assert len(overflow) == 1
        # All but the first admitted tenant landed in the overflow
        # bucket: 2-series budget, 6 tenants, one series each would have
        # been 6 — the collapsed series carries the rest.
        assert float(overflow[0].rsplit(" ", 1)[1]) >= 4.0

    def test_service_keeps_working_past_the_guardrail(self, make_harness):
        """Overflow is a telemetry concession, never a serving failure."""
        registry = MetricsRegistry(max_series_per_metric=1)
        h = make_harness(metrics=registry)
        for index in range(3):
            sid = h.session(f"t{index}")
            status = h.wait_terminal(
                h.service.submit(sid, h.payload())["run_id"]
            )
            assert status["state"] == "completed"
            assert status["record"]["result"]["utility"] == pytest.approx(0.9)
