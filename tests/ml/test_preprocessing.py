"""Tests for label encoding, imputation, scaling and feature preparation."""

import numpy as np
import pytest

from repro.dataframe import Table
from repro.ml import Imputer, LabelEncoder, StandardScaler, prepare_features


class TestLabelEncoder:
    def test_round_trip(self):
        enc = LabelEncoder()
        codes = enc.fit_transform(["b", "a", "b"])
        assert enc.inverse_transform(codes) == ["b", "a", "b"]

    def test_deterministic_ordering(self):
        codes = LabelEncoder().fit_transform(["z", "a"])
        assert list(codes) == [1, 0]

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(["a"])


class TestImputer:
    def test_nan_replaced_by_mean(self):
        x = np.array([[1.0, np.nan], [3.0, 4.0]])
        out = Imputer().fit_transform(x)
        assert out[0, 1] == 4.0
        assert np.all(np.isfinite(out))

    def test_all_nan_column_becomes_zero(self):
        x = np.array([[np.nan], [np.nan]])
        out = Imputer().fit_transform(x)
        assert np.all(out == 0.0)

    def test_transform_uses_fit_stats(self):
        imp = Imputer().fit(np.array([[2.0], [4.0]]))
        out = imp.transform(np.array([[np.nan]]))
        assert out[0, 0] == 3.0

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            Imputer().transform(np.zeros((1, 1)))


class TestStandardScaler:
    def test_zero_mean_unit_var(self):
        x = np.array([[1.0], [3.0]])
        out = StandardScaler().fit_transform(x)
        assert out.mean() == pytest.approx(0.0)
        assert out.std() == pytest.approx(1.0)

    def test_constant_column_unchanged_scale(self):
        x = np.array([[5.0], [5.0]])
        out = StandardScaler().fit_transform(x)
        assert np.all(out == 0.0)


class TestPrepareFeatures:
    @pytest.fixture
    def table(self):
        return Table(
            "t",
            {
                "num": [1.0, None, 3.0],
                "cat": ["a", "b", "a"],
                "target": [0, 1, 0],
            },
        )

    def test_shapes(self, table):
        x, y = prepare_features(table, ["num", "cat"], "target")
        assert x.shape == (3, 2)
        assert len(y) == 3

    def test_target_excluded_from_features(self, table):
        x, y = prepare_features(table, ["num", "cat", "target"], "target")
        assert x.shape == (3, 2)

    def test_matrix_is_finite(self, table):
        x = prepare_features(table, ["num", "cat"])
        assert np.all(np.isfinite(x))

    def test_no_features(self, table):
        x = prepare_features(table, [])
        assert x.shape == (3, 0)
