"""Tests for linear models, naive Bayes and k-NN."""

import numpy as np
import pytest

from repro.ml import (
    GaussianNB,
    KNeighborsClassifier,
    LogisticRegression,
    RidgeRegression,
    accuracy,
)


@pytest.fixture
def blobs():
    rng = np.random.default_rng(0)
    x0 = rng.normal(-2.0, 0.7, size=(50, 2))
    x1 = rng.normal(2.0, 0.7, size=(50, 2))
    return np.vstack([x0, x1]), np.array([0] * 50 + [1] * 50)


class TestRidge:
    def test_recovers_linear_coefficients(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(200, 2))
        y = 2.0 * x[:, 0] - 1.0 * x[:, 1] + 5.0
        model = RidgeRegression(alpha=1e-6).fit(x, y)
        assert model.coef_[0] == pytest.approx(2.0, abs=0.05)
        assert model.coef_[1] == pytest.approx(-1.0, abs=0.05)
        assert model.intercept_ == pytest.approx(5.0, abs=0.05)

    def test_regularization_shrinks(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50, 1))
        y = 3.0 * x[:, 0]
        weak = RidgeRegression(alpha=1e-6).fit(x, y)
        strong = RidgeRegression(alpha=1000.0).fit(x, y)
        assert abs(strong.coef_[0]) < abs(weak.coef_[0])

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((1, 1)))

    def test_no_intercept(self):
        x = np.array([[1.0], [2.0]])
        y = np.array([2.0, 4.0])
        model = RidgeRegression(alpha=1e-9, fit_intercept=False).fit(x, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(2.0, abs=1e-3)


class TestLogistic:
    def test_separable(self, blobs):
        x, y = blobs
        model = LogisticRegression(n_iter=300).fit(x, y)
        assert accuracy(y, model.predict(x)) >= 0.95

    def test_proba_in_unit_interval(self, blobs):
        x, y = blobs
        model = LogisticRegression().fit(x, y)
        proba = model.predict_proba(x)
        assert np.all(proba >= 0) and np.all(proba <= 1)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_multiclass_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit(np.zeros((3, 1)), np.array([0, 1, 2]))

    def test_preserves_label_values(self):
        x = np.array([[-1.0], [1.0], [-1.1], [1.1]])
        y = np.array(["no", "yes", "no", "yes"])
        model = LogisticRegression(n_iter=200).fit(x, y)
        assert set(model.predict(x)) <= {"no", "yes"}


class TestGaussianNB:
    def test_separable(self, blobs):
        x, y = blobs
        model = GaussianNB().fit(x, y)
        assert accuracy(y, model.predict(x)) >= 0.95

    def test_proba_normalized(self, blobs):
        x, y = blobs
        proba = GaussianNB().fit(x, y).predict_proba(x[:3])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_three_classes(self):
        x = np.array([[0.0], [0.1], [5.0], [5.1], [10.0], [10.1]])
        y = np.array([0, 0, 1, 1, 2, 2])
        model = GaussianNB().fit(x, y)
        assert list(model.predict([[0.05], [5.05], [10.05]])) == [0, 1, 2]


class TestKNN:
    def test_separable(self, blobs):
        x, y = blobs
        model = KNeighborsClassifier(n_neighbors=3).fit(x, y)
        assert accuracy(y, model.predict(x)) >= 0.95

    def test_k_larger_than_dataset(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0, 0])
        model = KNeighborsClassifier(n_neighbors=10).fit(x, y)
        assert model.predict([[0.5]])[0] == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)

    def test_nearest_wins(self):
        x = np.array([[0.0], [10.0]])
        y = np.array(["a", "b"])
        model = KNeighborsClassifier(n_neighbors=1).fit(x, y)
        assert model.predict([[1.0]])[0] == "a"
