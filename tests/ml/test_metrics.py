"""Tests for classification and regression metrics."""

import numpy as np
import pytest

from repro.ml import (
    accuracy,
    confusion_matrix,
    f1_score,
    mean_absolute_error,
    precision_recall_f1,
    r2_score,
    root_mean_squared_error,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 0, 1], [1, 0, 1]) == 1.0

    def test_half(self):
        assert accuracy([1, 0], [1, 1]) == 0.5

    def test_empty(self):
        assert accuracy([], []) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1, 2], [1])


class TestF1:
    def test_perfect_binary(self):
        assert f1_score([1, 1, 0], [1, 1, 0]) == 1.0

    def test_all_wrong(self):
        assert f1_score([1, 1], [0, 0]) == 0.0

    def test_known_value(self):
        # tp=1 fp=1 fn=1 -> precision=recall=0.5 -> f1=0.5
        p, r, f1 = precision_recall_f1([1, 1, 0], [1, 0, 1])
        assert (p, r, f1) == (0.5, 0.5, 0.5)

    def test_macro_averages_classes(self):
        score = f1_score([0, 0, 1, 1], [0, 0, 1, 0], average="macro")
        # class 0: p=2/3, r=1 -> 0.8 ; class 1: p=1, r=0.5 -> 2/3
        assert score == pytest.approx((0.8 + 2 / 3) / 2)

    def test_unknown_average(self):
        with pytest.raises(ValueError):
            f1_score([1], [1], average="micro")

    def test_no_positive_predictions(self):
        p, r, f1 = precision_recall_f1([0, 0], [0, 0])
        assert f1 == 0.0


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        m = confusion_matrix([0, 1, 1], [0, 1, 1])
        assert m[0, 0] == 1 and m[1, 1] == 2 and m[0, 1] == 0

    def test_off_diagonal(self):
        m = confusion_matrix([0, 1], [1, 0])
        assert m[0, 1] == 1 and m[1, 0] == 1


class TestRegressionMetrics:
    def test_mae(self):
        assert mean_absolute_error([1, 2, 3], [2, 2, 2]) == pytest.approx(2 / 3)

    def test_rmse(self):
        assert root_mean_squared_error([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_r2_perfect(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_r2_mean_prediction_is_zero(self):
        assert r2_score([1, 2, 3], [2, 2, 2]) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score([5, 5, 5], [1, 2, 3]) == 0.0
