"""Tests for k-means, model selection utilities and MiniAutoML."""

import numpy as np
import pytest

from repro.ml import (
    KMeans,
    MiniAutoML,
    accuracy,
    cross_val_score,
    kfold_indices,
    train_test_split,
)
from repro.ml.naive_bayes import GaussianNB


@pytest.fixture
def three_blobs():
    rng = np.random.default_rng(0)
    centers = np.array([[0, 0], [10, 0], [0, 10]])
    points = np.vstack([rng.normal(c, 0.5, size=(30, 2)) for c in centers])
    return points


class TestKMeans:
    def test_finds_three_blobs(self, three_blobs):
        model = KMeans(n_clusters=3, seed=0).fit(three_blobs)
        # Each blob of 30 points should map to a single cluster.
        labels = model.labels_
        for start in (0, 30, 60):
            blob_labels = labels[start : start + 30]
            assert len(set(blob_labels.tolist())) == 1

    def test_inertia_decreases_with_k(self, three_blobs):
        i1 = KMeans(n_clusters=1, seed=0).fit(three_blobs).inertia_
        i3 = KMeans(n_clusters=3, seed=0).fit(three_blobs).inertia_
        assert i3 < i1

    def test_max_cluster_radius_small_for_tight_blobs(self, three_blobs):
        model = KMeans(n_clusters=3, seed=0).fit(three_blobs)
        assert model.max_cluster_radius(three_blobs) < 3.0

    def test_predict_assigns_nearest(self, three_blobs):
        model = KMeans(n_clusters=3, seed=0).fit(three_blobs)
        label_at_origin = model.predict(np.array([[0.0, 0.0]]))[0]
        assert label_at_origin == model.labels_[0]

    def test_too_many_clusters_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=1).fit(np.empty((0, 2)))


class TestModelSelection:
    def test_split_sizes(self):
        x = np.arange(10).reshape(-1, 1)
        y = np.arange(10)
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, test_fraction=0.3, seed=0)
        assert len(x_te) == 3 and len(x_tr) == 7

    def test_split_deterministic(self):
        x = np.arange(10).reshape(-1, 1)
        y = np.arange(10)
        a = train_test_split(x, y, seed=5)
        b = train_test_split(x, y, seed=5)
        assert np.array_equal(a[1], b[1])

    def test_split_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((2, 1)), np.zeros(2), test_fraction=1.5)

    def test_split_length_mismatch(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((3, 1)), np.zeros(2))

    def test_kfold_partitions_everything(self):
        seen = []
        for _, test_idx in kfold_indices(10, 3, seed=0):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(10))

    def test_kfold_train_test_disjoint(self):
        for train_idx, test_idx in kfold_indices(12, 4, seed=0):
            assert not set(train_idx.tolist()) & set(test_idx.tolist())

    def test_kfold_invalid(self):
        with pytest.raises(ValueError):
            list(kfold_indices(3, 5))
        with pytest.raises(ValueError):
            list(kfold_indices(10, 1))

    def test_cross_val_score_learnable(self):
        rng = np.random.default_rng(0)
        x = np.vstack([rng.normal(-2, 0.5, (30, 1)), rng.normal(2, 0.5, (30, 1))])
        y = np.array([0] * 30 + [1] * 30)
        score = cross_val_score(GaussianNB, x, y, accuracy, k=3, seed=0)
        assert score > 0.9


class TestMiniAutoML:
    def test_classification_beats_chance(self):
        rng = np.random.default_rng(1)
        x = np.vstack([rng.normal(-2, 0.6, (40, 2)), rng.normal(2, 0.6, (40, 2))])
        y = np.array([0] * 40 + [1] * 40)
        automl = MiniAutoML(mode="classification", seed=0).fit(x, y)
        assert automl.best_score_ > 0.85
        assert automl.best_name_ is not None

    def test_regression_finds_low_mae(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 2))
        y = x[:, 0] * 4.0
        automl = MiniAutoML(mode="regression", seed=0).fit(x, y)
        assert automl.best_score_ < 1.0  # MAE

    def test_multiclass_skips_logistic(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(60, 2))
        y = np.array([0, 1, 2] * 20)
        automl = MiniAutoML(mode="classification", seed=0).fit(x, y)
        assert automl.best_model_ is not None

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            MiniAutoML(mode="ranking")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MiniAutoML().predict(np.zeros((1, 2)))
