"""Tests for decision trees and random forests on learnable datasets."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
    accuracy,
    mean_absolute_error,
)


@pytest.fixture
def blob_data():
    """Two well-separated Gaussian blobs — trivially learnable."""
    rng = np.random.default_rng(0)
    x0 = rng.normal(0.0, 0.5, size=(60, 3))
    x1 = rng.normal(3.0, 0.5, size=(60, 3))
    x = np.vstack([x0, x1])
    y = np.array([0] * 60 + [1] * 60)
    return x, y


@pytest.fixture
def linear_data():
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, size=(150, 2))
    y = 3.0 * x[:, 0] - 2.0 * x[:, 1]
    return x, y


class TestDecisionTreeClassifier:
    def test_learns_separable_blobs(self, blob_data):
        x, y = blob_data
        model = DecisionTreeClassifier(max_depth=4, seed=0).fit(x, y)
        assert accuracy(y, model.predict(x)) >= 0.98

    def test_pure_node_is_leaf(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([1, 1])
        model = DecisionTreeClassifier(seed=0).fit(x, y)
        assert model.depth() == 0

    def test_max_depth_respected(self, blob_data):
        x, y = blob_data
        model = DecisionTreeClassifier(max_depth=2, seed=0).fit(x, y)
        assert model.depth() <= 2

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            DecisionTreeClassifier().fit(np.array([[np.nan]]), np.array([0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.empty((0, 2)), np.array([]))

    def test_rejects_1d_x(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.array([1.0, 2.0]), np.array([0, 1]))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 1)))

    def test_predict_wrong_width(self, blob_data):
        x, y = blob_data
        model = DecisionTreeClassifier(seed=0).fit(x, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 99)))

    def test_predict_proba_rows_sum_to_one(self, blob_data):
        x, y = blob_data
        model = DecisionTreeClassifier(seed=0).fit(x, y)
        proba = model.predict_proba(x[:5])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_constant_features_yield_majority(self):
        x = np.zeros((10, 2))
        y = np.array([0] * 7 + [1] * 3)
        model = DecisionTreeClassifier(seed=0).fit(x, y)
        assert set(model.predict(x)) == {0}


class TestDecisionTreeRegressor:
    def test_fits_step_function(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(float) * 10.0
        model = DecisionTreeRegressor(max_depth=2, seed=0).fit(x, y)
        assert mean_absolute_error(y, model.predict(x)) < 0.5

    def test_linear_approximation(self, linear_data):
        x, y = linear_data
        model = DecisionTreeRegressor(max_depth=6, seed=0).fit(x, y)
        assert mean_absolute_error(y, model.predict(x)) < 0.5

    def test_leaf_value_is_mean(self):
        x = np.zeros((4, 1))
        y = np.array([1.0, 2.0, 3.0, 6.0])
        model = DecisionTreeRegressor(seed=0).fit(x, y)
        assert model.predict(np.zeros((1, 1)))[0] == pytest.approx(3.0)


class TestRandomForest:
    def test_classifier_beats_chance(self, blob_data):
        x, y = blob_data
        model = RandomForestClassifier(n_estimators=5, seed=0).fit(x, y)
        assert accuracy(y, model.predict(x)) >= 0.95

    def test_classifier_deterministic_given_seed(self, blob_data):
        x, y = blob_data
        p1 = RandomForestClassifier(n_estimators=3, seed=7).fit(x, y).predict(x)
        p2 = RandomForestClassifier(n_estimators=3, seed=7).fit(x, y).predict(x)
        assert np.array_equal(p1, p2)

    def test_predict_proba_shape(self, blob_data):
        x, y = blob_data
        model = RandomForestClassifier(n_estimators=3, seed=0).fit(x, y)
        proba = model.predict_proba(x[:4])
        assert proba.shape == (4, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_regressor_fits(self, linear_data):
        x, y = linear_data
        model = RandomForestRegressor(n_estimators=5, seed=0).fit(x, y)
        assert mean_absolute_error(y, model.predict(x)) < 0.6

    def test_feature_importances_sum_to_one(self, blob_data):
        x, y = blob_data
        model = RandomForestClassifier(n_estimators=5, seed=0).fit(x, y)
        imp = model.feature_importances()
        assert imp.shape == (3,)
        assert imp.sum() == pytest.approx(1.0)

    def test_informative_feature_ranked_higher(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(200, 2))
        y = (x[:, 0] > 0).astype(int)  # only feature 0 matters
        model = RandomForestClassifier(n_estimators=8, max_features=None, seed=0)
        model.fit(x, y)
        imp = model.feature_importances()
        assert imp[0] > imp[1]

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)
