"""Correctness tests for the vectorized split scan against brute force."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, _gini


def brute_force_best_split(x_col, y, impurity_fn):
    """Reference implementation: evaluate every boundary directly."""
    order = np.argsort(x_col, kind="stable")
    xs, ys = x_col[order], y[order]
    n = len(ys)
    best = (np.inf, None)
    for pos in range(n - 1):
        if xs[pos] == xs[pos + 1]:
            continue
        left, right = ys[: pos + 1], ys[pos + 1 :]
        weighted = (len(left) * impurity_fn(left) + len(right) * impurity_fn(right)) / n
        if weighted < best[0]:
            best = (weighted, (xs[pos] + xs[pos + 1]) / 2.0)
    return best


def gini_of(labels):
    _, counts = np.unique(labels, return_counts=True)
    return _gini(counts.astype(float))


class TestClassifierScan:
    @given(st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 40))
        x = rng.normal(size=(n, 1))
        y = rng.integers(0, 3, size=n)
        if len(np.unique(y)) < 2:
            return
        tree = DecisionTreeClassifier(max_depth=1, n_thresholds=1000, seed=0)
        tree._n_features = 1
        feature, threshold = tree._best_split(x, y, rng)
        expected_impurity, expected_threshold = brute_force_best_split(
            x[:, 0], y, gini_of
        )
        if expected_threshold is None:
            assert feature is None or gini_of(y) == 0
            return
        if feature is not None:
            # The found split must be at least as good as brute force
            # (same candidate set when n_thresholds is large).
            mask = x[:, 0] <= threshold
            got = (
                mask.sum() * gini_of(y[mask])
                + (~mask).sum() * gini_of(y[~mask])
            ) / len(y)
            assert got <= expected_impurity + 1e-9


class TestRegressorScan:
    @given(st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 40))
        x = rng.normal(size=(n, 1))
        y = rng.normal(size=n)
        tree = DecisionTreeRegressor(max_depth=1, n_thresholds=1000, seed=0)
        tree._n_features = 1
        feature, threshold = tree._best_split(x, y, rng)
        expected_impurity, expected_threshold = brute_force_best_split(
            x[:, 0], y, lambda v: float(np.var(v))
        )
        if feature is not None:
            mask = x[:, 0] <= threshold
            got = (
                mask.sum() * float(np.var(y[mask]))
                + (~mask).sum() * float(np.var(y[~mask]))
            ) / len(y)
            assert got <= expected_impurity + 1e-9


class TestBoundaries:
    def test_min_samples_leaf_respected(self):
        tree = DecisionTreeClassifier(min_samples_leaf=3, n_thresholds=100)
        sorted_col = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        positions = tree._boundaries(sorted_col)
        # Splits leaving fewer than 3 on either side are filtered.
        assert all(p + 1 >= 3 and len(sorted_col) - (p + 1) >= 3 for p in positions)

    def test_constant_column_no_boundaries(self):
        tree = DecisionTreeClassifier()
        assert tree._boundaries(np.full(10, 3.0)).size == 0

    def test_subsampling_caps_positions(self):
        tree = DecisionTreeClassifier(n_thresholds=4)
        sorted_col = np.arange(100, dtype=float)
        assert tree._boundaries(sorted_col).size <= 4
