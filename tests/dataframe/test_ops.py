"""Tests for relational operations: joins, unions, concatenation."""

import pytest

from repro.dataframe import Table, left_join, inner_join, union_tables, concat_columns
from repro.dataframe.ops import join_overlap


@pytest.fixture
def houses():
    return Table(
        "houses",
        {"zip": ["1", "2", "3", "4"], "price": [10, 20, 30, 40]},
    )


@pytest.fixture
def crime():
    return Table(
        "crime",
        {"zipcode": ["1", "2", "2", "9"], "crimes": [5.0, 7.0, 9.0, 1.0]},
    )


class TestLeftJoin:
    def test_basic_alignment(self, houses, crime):
        joined = left_join(houses, crime, "zip", "zipcode")
        assert joined.num_rows == 4
        assert joined.column("crimes")[0] == 5.0

    def test_one_to_many_numeric_mean(self, houses, crime):
        joined = left_join(houses, crime, "zip", "zipcode")
        assert joined.column("crimes")[1] == 8.0  # mean(7, 9)

    def test_unmatched_rows_missing(self, houses, crime):
        joined = left_join(houses, crime, "zip", "zipcode")
        assert joined.column("crimes")[2] is None
        assert joined.column("crimes")[3] is None

    def test_join_key_not_duplicated(self, houses, crime):
        joined = left_join(houses, crime, "zip", "zipcode")
        assert "zipcode" not in joined

    def test_column_restriction(self, houses):
        right = Table("r", {"zipcode": ["1"], "a": [1], "b": [2]})
        joined = left_join(houses, right, "zip", "zipcode", columns=["a"])
        assert "a" in joined
        assert "b" not in joined

    def test_name_clash_gets_prefix(self, houses):
        right = Table("stats", {"zipcode": ["1"], "price": [99]})
        joined = left_join(houses, right, "zip", "zipcode")
        assert "stats.price" in joined
        assert joined.column("price") == [10, 20, 30, 40]

    def test_numeric_string_keys_match_ints(self):
        left = Table("l", {"k": [1, 2]})
        right = Table("r", {"k": ["1", "2"], "v": ["a", "b"]})
        joined = left_join(left, right, "k", "k")
        assert joined.column("v") == ["a", "b"]

    def test_float_integral_keys_match(self):
        left = Table("l", {"k": [1.0, 2.0]})
        right = Table("r", {"k": ["1", "2"], "v": ["a", "b"]})
        assert left_join(left, right, "k", "k").column("v") == ["a", "b"]

    def test_missing_keys_never_match(self):
        left = Table("l", {"k": [None, "1"]})
        right = Table("r", {"k": [None, "1"], "v": ["x", "y"]})
        joined = left_join(left, right, "k", "k")
        assert joined.column("v") == [None, "y"]

    def test_categorical_many_takes_first(self):
        left = Table("l", {"k": ["1"]})
        right = Table("r", {"k": ["1", "1"], "v": ["first", "second"]})
        assert left_join(left, right, "k", "k").column("v") == ["first"]


class TestInnerJoin:
    def test_drops_unmatched(self, houses, crime):
        joined = inner_join(houses, crime, "zip", "zipcode")
        assert joined.num_rows == 2
        assert joined.column("zip") == ["1", "2"]

    def test_first_match_semantics(self, houses, crime):
        joined = inner_join(houses, crime, "zip", "zipcode")
        assert joined.column("crimes") == [5.0, 7.0]


class TestOverlap:
    def test_join_overlap_counts_matching_rows(self, houses, crime):
        assert join_overlap(houses, crime, "zip", "zipcode") == 2

    def test_join_overlap_zero(self, houses):
        other = Table("o", {"zipcode": ["99"]})
        assert join_overlap(houses, other, "zip", "zipcode") == 0


class TestUnion:
    def test_shared_columns_stacked(self):
        a = Table("a", {"x": [1, 2], "y": [3, 4]})
        b = Table("b", {"x": [5], "y": [6]})
        u = union_tables(a, b)
        assert u.num_rows == 3
        assert u.column("x") == [1, 2, 5]

    def test_disjoint_columns_padded(self):
        a = Table("a", {"x": [1]})
        b = Table("b", {"y": [2]})
        u = union_tables(a, b)
        assert u.column("x") == [1, None]
        assert u.column("y") == [None, 2]


class TestConcatColumns:
    def test_basic(self):
        a = Table("a", {"x": [1, 2]})
        b = Table("b", {"y": [3, 4]})
        c = concat_columns(a, b)
        assert c.column_names == ["x", "y"]

    def test_clash_prefixed(self):
        a = Table("a", {"x": [1]})
        b = Table("b", {"x": [2]})
        c = concat_columns(a, b)
        assert c.column("b.x") == [2]

    def test_row_mismatch_raises(self):
        with pytest.raises(ValueError, match="row mismatch"):
            concat_columns(Table("a", {"x": [1]}), Table("b", {"y": [1, 2]}))
