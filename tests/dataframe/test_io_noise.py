"""Tests for CSV IO and Definition-1 noise models."""

import pytest

from repro.dataframe import (
    Table,
    read_csv,
    write_csv,
    drop_headers,
    inject_missing_values,
    duplicate_rows,
    shuffle_column,
)


class TestCsv:
    def test_round_trip(self, tmp_path):
        t = Table("t", {"a": [1, None, 3], "b": ["x", "y", ""]})
        path = tmp_path / "t.csv"
        write_csv(t, str(path))
        back = read_csv(str(path))
        assert back.num_rows == 3
        assert back.column("a") == ["1", None, "3"]
        # Empty string round-trips to missing.
        assert back.column("b")[2] is None

    def test_name_from_filename(self, tmp_path):
        path = tmp_path / "crime_stats.csv"
        write_csv(Table("x", {"a": [1]}), str(path))
        assert read_csv(str(path)).name == "crime_stats"

    def test_short_rows_padded(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n2,3\n")
        t = read_csv(str(path))
        assert t.column("b") == [None, "3"]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert read_csv(str(path)).num_rows == 0


class TestNoise:
    @pytest.fixture
    def table(self):
        return Table("t", {"a": list(range(20)), "b": list(range(20))})

    def test_drop_headers_renames(self, table):
        noisy = drop_headers(table, 0.5, seed=0)
        placeholders = [c for c in noisy.column_names if c.startswith("_col_")]
        assert len(placeholders) == 1

    def test_drop_headers_preserves_cells(self, table):
        noisy = drop_headers(table, 1.0, seed=0)
        assert noisy.num_rows == 20
        assert sorted(noisy.column(noisy.column_names[0])) == list(range(20))

    def test_inject_missing_fraction(self, table):
        noisy = inject_missing_values(table, 0.25, seed=0)
        assert noisy.missing_fraction("a") == 0.25

    def test_inject_missing_zero(self, table):
        noisy = inject_missing_values(table, 0.0, seed=0)
        assert noisy.missing_fraction("a") == 0.0

    def test_duplicate_rows_appends(self, table):
        noisy = duplicate_rows(table, 0.5, seed=0)
        assert noisy.num_rows == 30

    def test_duplicate_rows_values_from_original(self, table):
        noisy = duplicate_rows(table, 0.5, seed=0)
        assert set(noisy.column("a")) <= set(range(20))

    def test_shuffle_column_permutes(self, table):
        noisy = shuffle_column(table, "a", seed=1)
        assert sorted(noisy.column("a")) == list(range(20))
        assert noisy.column("b") == list(range(20))

    def test_shuffle_breaks_alignment(self, table):
        noisy = shuffle_column(table, "a", seed=1)
        assert noisy.column("a") != list(range(20))

    def test_noise_is_deterministic(self, table):
        a = inject_missing_values(table, 0.3, seed=7)
        b = inject_missing_values(table, 0.3, seed=7)
        assert a.column("a") == b.column("a")


class TestNoiseProperties:
    def test_duplicate_zero_fraction_is_copy(self):
        t = Table("t", {"a": [1, 2]})
        assert duplicate_rows(t, 0.0, seed=0).num_rows == 2

    def test_duplicate_empty_table(self):
        t = Table("t", {"a": []})
        assert duplicate_rows(t, 0.9, seed=0).num_rows == 0
