"""Property-based tests (hypothesis) for the dataframe substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import Table, left_join, union_tables
from repro.dataframe.ops import join_overlap
from repro.dataframe.types import infer_column_type, to_float_array

cells = st.one_of(
    st.none(),
    st.integers(-1000, 1000),
    st.floats(-1e6, 1e6, allow_nan=False),
    st.text(alphabet="abcdef ", max_size=6),
)


@st.composite
def tables(draw, max_rows=8, max_cols=4):
    n_rows = draw(st.integers(0, max_rows))
    n_cols = draw(st.integers(1, max_cols))
    columns = {
        f"c{i}": draw(st.lists(cells, min_size=n_rows, max_size=n_rows))
        for i in range(n_cols)
    }
    return Table("t", columns)


class TestTableProperties:
    @given(tables())
    @settings(max_examples=50, deadline=None)
    def test_project_preserves_rows(self, table):
        projected = table.project(table.column_names[:1])
        assert projected.num_rows == table.num_rows

    @given(tables())
    @settings(max_examples=50, deadline=None)
    def test_copy_equals_original(self, table):
        assert table.copy() == table

    @given(tables())
    @settings(max_examples=50, deadline=None)
    def test_to_float_array_length(self, table):
        column = table.column_names[0]
        assert len(to_float_array(table.column(column))) == table.num_rows

    @given(tables())
    @settings(max_examples=50, deadline=None)
    def test_encoded_is_finite_or_nan(self, table):
        column = table.column_names[0]
        encoded = table.encoded(column)
        assert np.all(np.isfinite(encoded) | np.isnan(encoded))

    @given(tables(), st.integers(0, 10))
    @settings(max_examples=50, deadline=None)
    def test_head_bounded(self, table, n):
        assert table.head(n).num_rows == min(n, table.num_rows)


class TestJoinProperties:
    @given(tables(), tables())
    @settings(max_examples=40, deadline=None)
    def test_left_join_preserves_left_rows(self, left, right):
        joined = left_join(left, right, left.column_names[0], right.column_names[0])
        assert joined.num_rows == left.num_rows

    @given(tables(), tables())
    @settings(max_examples=40, deadline=None)
    def test_overlap_bounded_by_left_rows(self, left, right):
        overlap = join_overlap(
            left, right, left.column_names[0], right.column_names[0]
        )
        assert 0 <= overlap <= left.num_rows

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_self_join_overlap_counts_non_missing(self, table):
        key = table.column_names[0]
        overlap = join_overlap(table, table, key, key)
        non_missing = sum(
            1 for v in table.column(key)
            if v is not None and str(v).strip() != ""
        )
        assert overlap == non_missing


class TestUnionProperties:
    @given(tables(), tables())
    @settings(max_examples=40, deadline=None)
    def test_union_row_count_additive(self, top, bottom):
        unioned = union_tables(top, bottom)
        assert unioned.num_rows == top.num_rows + bottom.num_rows

    @given(tables(), tables())
    @settings(max_examples=40, deadline=None)
    def test_union_schema_superset(self, top, bottom):
        unioned = union_tables(top, bottom)
        assert set(top.column_names) <= set(unioned.column_names)
        assert set(bottom.column_names) <= set(unioned.column_names)


class TestTypeInference:
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_integers_are_numeric(self, values):
        from repro.dataframe.types import ColumnType

        assert infer_column_type(values) == ColumnType.NUMERIC

    @given(st.lists(st.none(), min_size=1, max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_all_missing_is_empty(self, values):
        from repro.dataframe.types import ColumnType

        assert infer_column_type(values) == ColumnType.EMPTY
