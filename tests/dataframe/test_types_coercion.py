"""Adversarial coverage for :mod:`repro.dataframe.types` coercion.

These functions are now kernel preconditions: every fast path in
:mod:`repro.kernels.coerce` assumes the semantics pinned here, so the
public dataframe layer gets its own adversarial tests independent of
the differential suite.
"""

import math

import numpy as np
import pytest

from repro.dataframe.types import (
    ColumnType,
    encode_categorical,
    infer_column_type,
    is_missing,
    to_float_array,
)


class TestIsMissing:
    @pytest.mark.parametrize(
        "value", [None, float("nan"), "", "  ", "\t\n\r "]
    )
    def test_missing(self, value):
        assert is_missing(value)

    @pytest.mark.parametrize(
        "value",
        [0, 0.0, -0.0, False, "0", " x ", float("inf"), float("-inf"), "nan"],
    )
    def test_not_missing(self, value):
        assert not is_missing(value)


class TestToFloatArray:
    def test_empty(self):
        out = to_float_array([])
        assert out.shape == (0,) and out.dtype == float

    def test_numeric_strings_with_whitespace(self):
        out = to_float_array([" 1 ", "2.5", "1e3", "-4", "+5", ".5"])
        assert out.tolist() == [1.0, 2.5, 1000.0, -4.0, 5.0, 0.5]

    def test_non_numeric_strings_are_nan(self):
        out = to_float_array(["x", "1,2", "0x10", "--1", "1 2"])
        assert np.isnan(out).all()

    def test_special_float_strings(self):
        out = to_float_array(["inf", "-inf", "infinity", "nan"])
        assert out[0] == math.inf and out[1] == -math.inf
        assert out[2] == math.inf and np.isnan(out[3])

    def test_bools_coerce_to_01(self):
        assert to_float_array([True, False]).tolist() == [1.0, 0.0]

    def test_missing_cells_are_nan(self):
        out = to_float_array([None, float("nan"), "", "   ", 2])
        assert np.isnan(out[:4]).all() and out[4] == 2.0

    def test_numpy_scalars(self):
        out = to_float_array([np.int64(3), np.float64(2.5)])
        assert out.tolist() == [3.0, 2.5]

    def test_huge_ints_do_not_overflow_silently(self):
        out = to_float_array([10**40, -(10**40)])
        assert out[0] == float(10**40) and out[1] == float(-(10**40))

    def test_infinities_survive(self):
        out = to_float_array([float("inf"), float("-inf"), -0.0])
        assert out[0] == math.inf and out[1] == -math.inf
        assert math.copysign(1.0, out[2]) == -1.0

    def test_underscore_float_grammar(self):
        # float()'s grammar accepts PEP 515 underscores; pinned so the
        # numpy fast path (which parses differently) must defer.
        assert to_float_array(["1_000"]).tolist() == [1000.0]

    def test_nul_bytes_in_strings(self):
        out = to_float_array(["1\x002", "3"])
        assert np.isnan(out[0]) and out[1] == 3.0


class TestEncodeCategorical:
    def test_empty(self):
        assert encode_categorical([]).shape == (0,)

    def test_codes_follow_sorted_string_order(self):
        out = encode_categorical(["b", "a", "c", "a", "b"])
        assert out.tolist() == [1.0, 0.0, 2.0, 0.0, 1.0]

    def test_missing_cells_are_nan(self):
        out = encode_categorical(["a", None, "", "  ", float("nan"), "b"])
        assert out[0] == 0.0 and out[5] == 1.0
        assert np.isnan(out[1:5]).all()

    def test_all_missing(self):
        assert np.isnan(encode_categorical([None, "", float("nan")])).all()

    def test_non_string_cells_encode_via_str(self):
        out = encode_categorical([1, "1", 2.5, True])
        # sorted distinct strings: "1", "2.5", "True" — int 1 and "1" share a code
        assert out.tolist() == [0.0, 0.0, 1.0, 2.0]

    def test_unicode_sort_order(self):
        out = encode_categorical(["é", "e", "E"])
        assert out.tolist() == [2.0, 1.0, 0.0]

    def test_nul_bytes_keep_exact_codes(self):
        out = encode_categorical(["a\x00b", "a", "a\x00b"])
        assert out.tolist() == [1.0, 0.0, 1.0]

    def test_deterministic_across_input_order(self):
        a = encode_categorical(["x", "y", "z"])
        b = encode_categorical(["z", "y", "x"])
        assert a.tolist() == [0.0, 1.0, 2.0]
        assert b.tolist() == [2.0, 1.0, 0.0]


class TestInferColumnType:
    def test_empty_column(self):
        assert infer_column_type([]) is ColumnType.EMPTY
        assert infer_column_type([None, "", float("nan")]) is ColumnType.EMPTY

    def test_numeric(self):
        values = [1, "2.5", None, float("inf"), True]
        assert infer_column_type(values) is ColumnType.NUMERIC

    def test_numeric_strings_with_noise_fall_to_categorical(self):
        values = ["1", "2", "x"] * 5
        assert infer_column_type(values) is ColumnType.CATEGORICAL

    def test_text_when_many_distinct(self):
        values = [f"name-{i}" for i in range(500)]
        assert infer_column_type(values) is ColumnType.TEXT

    def test_threshold_scales_with_column_size(self):
        # 5% of 1000 = 50 distinct > threshold 20, still categorical.
        values = [f"c{i % 40}" for i in range(1000)]
        assert infer_column_type(values) is ColumnType.CATEGORICAL

    def test_custom_threshold(self):
        values = ["a", "b", "c"]
        assert infer_column_type(values, categorical_threshold=2) is (
            ColumnType.TEXT
        )
        assert infer_column_type(values, categorical_threshold=3) is (
            ColumnType.CATEGORICAL
        )

    def test_numpy_bool_cells_are_not_numeric(self):
        # np.bool_ is outside the reference's numeric families — pinned
        # (the kernel fast path must not reclassify it).
        assert infer_column_type([np.bool_(True)]) is ColumnType.CATEGORICAL

    def test_mixed_numeric_kinds(self):
        values = [np.int64(1), np.float64(2.0), 3, "4"]
        assert infer_column_type(values) is ColumnType.NUMERIC
