"""Unit tests for the Table core."""

import numpy as np
import pytest

from repro.dataframe import Table, ColumnType


@pytest.fixture
def small():
    return Table(
        "houses",
        {
            "zipcode": ["60601", "60602", "60603"],
            "price": [100.0, 200.0, 300.0],
            "label": ["low", "high", "high"],
        },
        source="test-portal",
    )


class TestConstruction:
    def test_shape(self, small):
        assert small.num_rows == 3
        assert small.num_columns == 3
        assert len(small) == 3

    def test_column_order_preserved(self, small):
        assert small.column_names == ["zipcode", "price", "label"]

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            Table("bad", {"a": [1, 2], "b": [1]})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table.from_rows("bad", ["a", "a"], [[1, 2]])

    def test_missing_header_gets_placeholder(self):
        t = Table("t", {None: [1, 2], "b": [3, 4]})
        assert t.column_names == ["_col_0", "b"]

    def test_empty_table(self):
        t = Table.empty("nothing")
        assert t.num_rows == 0
        assert t.num_columns == 0

    def test_from_rows_round_trip(self, small):
        rebuilt = Table.from_rows(
            "houses", small.column_names, [list(r.values()) for r in small.iter_rows()]
        )
        assert rebuilt.column("price") == small.column("price")

    def test_from_rows_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            Table.from_rows("bad", ["a", "b"], [[1]])


class TestAccess:
    def test_column_access(self, small):
        assert small.column("price") == [100.0, 200.0, 300.0]

    def test_unknown_column_raises(self, small):
        with pytest.raises(KeyError, match="nope"):
            small.column("nope")

    def test_contains(self, small):
        assert "price" in small
        assert "nope" not in small

    def test_row(self, small):
        assert small.row(1) == {"zipcode": "60602", "price": 200.0, "label": "high"}

    def test_distinct_values(self, small):
        assert small.distinct_values("label") == {"low", "high"}

    def test_missing_fraction(self):
        t = Table("t", {"a": [1, None, None, 4]})
        assert t.missing_fraction("a") == 0.5

    def test_missing_fraction_empty_column(self):
        assert Table("t", {"a": []}).missing_fraction("a") == 0.0


class TestTypes:
    def test_numeric_inference(self, small):
        assert small.column_type("price") == ColumnType.NUMERIC

    def test_numeric_strings_are_numeric(self, small):
        assert small.column_type("zipcode") == ColumnType.NUMERIC

    def test_categorical_inference(self, small):
        assert small.column_type("label") == ColumnType.CATEGORICAL

    def test_numeric_array_with_nan(self):
        t = Table("t", {"a": [1, None, "3"]})
        arr = t.numeric("a")
        assert arr[0] == 1.0
        assert np.isnan(arr[1])
        assert arr[2] == 3.0

    def test_encoded_categorical_deterministic(self, small):
        enc1 = small.encoded("label")
        enc2 = small.encoded("label")
        assert np.array_equal(enc1, enc2)
        assert set(enc1) == {0.0, 1.0}

    def test_to_matrix_shape(self, small):
        m = small.to_matrix(["price", "label"])
        assert m.shape == (3, 2)

    def test_to_matrix_empty_columns(self, small):
        assert small.to_matrix([]).shape == (3, 0)

    def test_numeric_columns(self, small):
        assert set(small.numeric_columns()) == {"zipcode", "price"}


class TestTransforms:
    def test_project(self, small):
        p = small.project(["price"])
        assert p.column_names == ["price"]
        assert p.num_rows == 3

    def test_project_missing_column(self, small):
        with pytest.raises(KeyError):
            small.project(["nope"])

    def test_drop_columns(self, small):
        d = small.drop_columns(["label"])
        assert "label" not in d

    def test_rename(self, small):
        r = small.rename_column("price", "cost")
        assert r.column_names == ["zipcode", "cost", "label"]

    def test_rename_missing(self, small):
        with pytest.raises(KeyError):
            small.rename_column("nope", "x")

    def test_with_column_appends(self, small):
        t = small.with_column("tax", [1, 2, 3])
        assert t.column("tax") == [1, 2, 3]
        assert small.num_columns == 3  # original untouched

    def test_with_column_wrong_length(self, small):
        with pytest.raises(ValueError):
            small.with_column("tax", [1])

    def test_select_rows(self, small):
        s = small.select_rows([2, 0])
        assert s.column("price") == [300.0, 100.0]

    def test_head(self, small):
        assert small.head(2).num_rows == 2
        assert small.head(10).num_rows == 3

    def test_sample_rows_deterministic(self, small):
        rng = np.random.default_rng(0)
        s = small.sample_rows(2, rng)
        assert s.num_rows == 2

    def test_sample_rows_all(self, small):
        rng = np.random.default_rng(0)
        assert small.sample_rows(10, rng).num_rows == 3

    def test_copy_is_independent(self, small):
        c = small.copy()
        c.column("price").append(999)  # mutate the copy's list
        assert small.num_rows == 3
        assert len(small.column("price")) == 3

    def test_equality(self, small):
        assert small == small.copy()
        assert small != small.project(["price"])
