"""The legacy free functions: deprecated, delegating, byte-identical."""

import warnings

import numpy as np
import pytest

from repro import (
    DiscoveryEngine,
    DiscoveryRequest,
    MetamConfig,
    prepare_candidates,
    run_baseline,
    run_metam,
)
from repro.data import clustering_scenario

CONFIG = dict(theta=0.6, query_budget=25, epsilon=0.1, seed=0)


@pytest.fixture(scope="module")
def scenario():
    return clustering_scenario(seed=0)


@pytest.fixture(scope="module")
def engine(scenario):
    return DiscoveryEngine(corpus=scenario.corpus)


class TestDeprecationWarnings:
    def test_prepare_candidates_warns(self, scenario):
        with pytest.warns(DeprecationWarning, match="prepare_candidates"):
            prepare_candidates(scenario.base, scenario.corpus, seed=0)

    def test_run_metam_warns(self, scenario, engine):
        candidates = engine.prepare(scenario.base, seed=0)
        with pytest.warns(DeprecationWarning, match="run_metam"):
            run_metam(
                candidates, scenario.base, scenario.corpus, scenario.task,
                MetamConfig(**CONFIG),
            )

    def test_run_baseline_warns(self, scenario, engine):
        candidates = engine.prepare(scenario.base, seed=0)
        with pytest.warns(DeprecationWarning, match="run_baseline"):
            run_baseline(
                "uniform", candidates, scenario.base, scenario.corpus,
                scenario.task, theta=0.6, query_budget=20, seed=0,
            )

    def test_warning_names_the_engine_replacement(self, scenario):
        with pytest.warns(DeprecationWarning, match="DiscoveryEngine"):
            prepare_candidates(scenario.base, scenario.corpus, seed=0)


class TestDelegation:
    def test_prepare_candidates_delegates_byte_identical(self, scenario, engine):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = prepare_candidates(scenario.base, scenario.corpus, seed=0)
        fresh = engine.prepare(scenario.base, seed=0)
        assert [c.aug_id for c in legacy] == [c.aug_id for c in fresh]
        for a, b in zip(legacy, fresh, strict=True):
            assert np.array_equal(a.profile_vector, b.profile_vector)
            assert a.values == b.values

    def test_run_baseline_delegates(self, scenario, engine):
        candidates = engine.prepare(scenario.base, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_baseline(
                "uniform", candidates, scenario.base, scenario.corpus,
                scenario.task, theta=0.6, query_budget=20, seed=0,
            )
        via_engine = engine.discover(
            DiscoveryRequest(
                base=scenario.base,
                task=scenario.task,
                searcher="uniform",
                theta=0.6,
                query_budget=20,
                seed=0,
                candidates=candidates,
            )
        ).result
        assert legacy.selected == via_engine.selected
        assert legacy.trace == via_engine.trace

    def test_run_baseline_unknown_name_still_value_error(self, scenario, engine):
        candidates = engine.prepare(scenario.base, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="unknown baseline 'greedy'"):
                run_baseline(
                    "greedy", candidates, scenario.base, scenario.corpus,
                    scenario.task,
                )

    def test_run_baseline_keeps_legacy_name_set(self, scenario, engine):
        # The frozen shim must not widen with the registry: 'metam' (and
        # the ablation variants) were never valid baseline names.
        candidates = engine.prepare(scenario.base, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="unknown baseline 'metam'"):
                run_baseline(
                    "metam", candidates, scenario.base, scenario.corpus,
                    scenario.task,
                )
