"""Thread-safety of one shared engine serving concurrent requests."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import DiscoveryEngine, DiscoveryRequest
from repro.core.config import MetamConfig
from repro.data import clustering_scenario

N_WORKERS = 4


@pytest.fixture(scope="module")
def scenario():
    return clustering_scenario(seed=0)


def request_for(scenario, seed, searcher="metam"):
    config = (
        MetamConfig(theta=0.6, query_budget=25, epsilon=0.1, seed=seed)
        if searcher == "metam"
        else None
    )
    return DiscoveryRequest(
        base=scenario.base,
        task=scenario.task,
        searcher=searcher,
        theta=0.6,
        query_budget=25,
        seed=seed,
        prepare_seed=0,
        config=config,
    )


class TestConcurrentDiscover:
    def test_concurrent_runs_match_sequential(self, scenario):
        sequential_engine = DiscoveryEngine(corpus=scenario.corpus)
        reference = {
            seed: sequential_engine.discover(request_for(scenario, seed)).result
            for seed in range(N_WORKERS)
        }

        shared = DiscoveryEngine(corpus=scenario.corpus)
        shared.prepare(scenario.base, seed=0)  # warm the shared spec
        with ThreadPoolExecutor(max_workers=N_WORKERS) as pool:
            futures = {
                seed: pool.submit(shared.discover, request_for(scenario, seed))
                for seed in range(N_WORKERS)
            }
            runs = {seed: f.result() for seed, f in futures.items()}

        for seed, run in runs.items():
            assert run.completed
            # Per-run RNG and accounting: concurrent results are exactly
            # the sequential results, run by run.
            assert run.result.selected == reference[seed].selected
            assert run.result.trace == reference[seed].trace
        stats = shared.stats()
        # prepare_seed pins the prep: one shared candidate set for all.
        assert stats["prepared_candidate_sets"] == 1
        assert stats["runs_started"] == N_WORKERS
        assert stats["runs_completed"] == N_WORKERS
        assert stats["queries_served"] == sum(
            r.result.queries for r in runs.values()
        )
        assert sorted(r.run_id for r in runs.values()) == list(
            range(1, N_WORKERS + 1)
        )

    def test_concurrent_same_request_shares_one_prepare(self, scenario):
        shared = DiscoveryEngine(corpus=scenario.corpus)
        with ThreadPoolExecutor(max_workers=N_WORKERS) as pool:
            futures = [
                pool.submit(shared.discover, request_for(scenario, seed=0))
                for _ in range(N_WORKERS)
            ]
            runs = [f.result() for f in futures]
        assert shared.stats()["prepared_candidate_sets"] == 1
        traces = {tuple(r.result.trace) for r in runs}
        assert len(traces) == 1  # identical requests, identical runs
