"""Engine/catalog/refresher telemetry: metrics, traces, and stats().

The golden rule under test: observability is *passive*.  Results must
be byte-identical with telemetry on, off, or shared; every counter the
engine reports must reconcile with what actually happened; and the
searcher hooks the engine borrows for a run must be chained and
restored, never clobbered.
"""

import json

import pytest

from repro.api import DiscoveryEngine, DiscoveryRequest
from repro.catalog import CatalogRefresher, CatalogStore
from repro.core.config import MetamConfig
from repro.core.metam import Metam
from repro.core.serialization import result_to_dict
from repro.data import clustering_scenario
from repro.obs.metrics import MetricsRegistry

CONFIG = dict(theta=0.6, query_budget=25, epsilon=0.1, seed=0)


@pytest.fixture(scope="module")
def scenario():
    return clustering_scenario(seed=0)


def request_for(scenario, **overrides):
    fields = dict(
        base=scenario.base,
        task=scenario.task,
        searcher="metam",
        config=MetamConfig(**CONFIG),
    )
    fields.update(overrides)
    return DiscoveryRequest(**fields)


def cacheable_request(engine, scenario, seed=0, searcher="metam"):
    """A request the result cache can key (task by registry name)."""
    try:
        engine.tasks.register("obs-task", lambda **_options: scenario.task)
    except Exception:
        pass  # already registered on this engine
    return DiscoveryRequest(
        base=scenario.base,
        task="obs-task",
        searcher=searcher,
        config=MetamConfig(**{**CONFIG, "seed": seed}),
        seed=seed,
    )


class TestGoldenResults:
    def test_results_identical_with_telemetry_on_off_and_shared(self, scenario):
        """Metrics and tracing must never perturb the search."""
        outcomes = []
        for kwargs in (
            {},  # instrumented defaults
            {"metrics": False, "tracing": False},  # dark
            {"metrics": MetricsRegistry()},  # caller-shared registry
        ):
            engine = DiscoveryEngine(corpus=scenario.corpus, **kwargs)
            run = engine.discover(request_for(scenario))
            outcomes.append(result_to_dict(run.result))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_dark_engine_records_no_trace(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus, tracing=False)
        run = engine.discover(request_for(scenario))
        assert run.trace is None
        assert list(engine.recent_traces) == []


class TestTraces:
    def test_run_carries_a_trace_tree(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        run = engine.discover(request_for(scenario))
        trace = run.trace
        assert trace["name"] == "discover"
        assert trace["attrs"]["run_id"] == run.run_id
        assert trace["attrs"]["searcher"] == "metam"
        names = [child["name"] for child in trace["children"]]
        assert names[:2] == ["prepare", "search"]
        search = trace["children"][1]
        kinds = {child["name"] for child in search["children"]}
        assert "query" in kinds and "round" in kinds
        assert trace in engine.recent_traces

    def test_trace_round_trips_through_run_record(self, scenario):
        from repro.api.run import DiscoveryRun

        engine = DiscoveryEngine(corpus=scenario.corpus)
        run = engine.discover(request_for(scenario))
        record = json.loads(json.dumps(run.to_record()))
        rebuilt = DiscoveryRun.from_record(record, run.request, run_id=99)
        assert rebuilt.trace == run.trace
        assert rebuilt.cache_info == run.cache_info


class TestStats:
    def test_stats_reports_telemetry_keys(self, scenario):
        engine = DiscoveryEngine(
            corpus=scenario.corpus, result_cache_bytes=8 << 20
        )
        request = cacheable_request(engine, scenario)
        engine.submit(request).result()
        engine.discover(request)  # replay
        stats = engine.stats()
        # Legacy keys survive the rewrite...
        assert stats["runs_started"] == 2
        assert stats["runs_completed"] == 2
        assert stats["result_cache_hits"] == 1
        assert stats["prepared_candidate_sets"] == 1
        # ...and the telemetry-backed ones arrive.
        assert stats["queue_depth"] == 0
        assert stats["pool_active"] == 0
        assert stats["pool_utilization"] == 0.0
        assert stats["prepare_cache_misses"] == 1
        assert stats["result_cache_misses"] == 1
        assert stats["result_cache_hit_rate"] == 0.5
        engine.shutdown()

    def test_counter_properties_back_onto_registry(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        engine.discover(request_for(scenario))
        assert engine.runs_started == 1
        assert engine.runs_completed == 1
        assert (
            engine.metrics.value("repro_engine_runs_total", status="completed")
            == 1.0
        )
        assert engine.queries_served == engine.metrics.value(
            "repro_engine_queries_served_total"
        )

    def test_failed_run_counted(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        with pytest.raises(ValueError):
            engine.discover(request_for(scenario, searcher="iarda"))
        assert (
            engine.metrics.value("repro_engine_runs_total", status="failed")
            == 1.0
        )


class TestMetricsExports:
    def test_prometheus_exposition_covers_acceptance_metrics(self, scenario):
        engine = DiscoveryEngine(
            corpus=scenario.corpus, result_cache_bytes=8 << 20
        )
        request = cacheable_request(engine, scenario)
        engine.submit(request).result()
        engine.discover(request)
        engine.shutdown()
        text = engine.metrics_prometheus()
        for family in (
            "repro_engine_submit_queue_depth",
            "repro_engine_pool_active_workers",
            "repro_engine_result_cache_events_total",
            "repro_engine_prepare_cache_events_total",
            "repro_engine_run_seconds",
            "repro_engine_run_rounds",
            "repro_engine_round_utility_gain",
            "repro_engine_staleness_served_seconds",
            "repro_store_lock_wait_seconds",
            "repro_refresher_cycles_total",
        ):
            assert f"# TYPE {family}" in text, f"{family} missing"
        assert 'repro_engine_result_cache_events_total{event="hit"} 1' in text

    def test_snapshot_quantiles_present(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        engine.discover(request_for(scenario))
        snapshot = engine.metrics_snapshot()
        series = snapshot["repro_engine_run_seconds"]["series"]
        completed = [s for s in series if ("completed",) == tuple(s["labels"].values())]
        assert completed and completed[0]["count"] == 1
        assert "p99" in completed[0]

    def test_shared_registry_collects_engine_and_refresher(self, scenario, tmp_path):
        registry = MetricsRegistry()
        engine = DiscoveryEngine(corpus=scenario.corpus, metrics=registry)
        refresher = CatalogRefresher(
            lambda: scenario.corpus,
            store=CatalogStore(str(tmp_path / "cat")),
            interval=60.0,
            staleness_budget=300.0,
            seed=0,
        )
        # Attach first: instrumenting after the first cycle would count
        # that cycle on the refresher's private registry instead.
        engine.attach_refresher(refresher)
        refresher.refresh_now()
        engine.discover(request_for(scenario))
        assert registry.value("repro_refresher_cycles_total", changed="true") == 1.0
        assert registry.value("repro_store_writes_total", section="objects") > 0
        lock_series = registry.get("repro_store_lock_wait_seconds").series()
        assert lock_series, "no shard lock waits recorded"
        staleness = registry.get("repro_engine_staleness_served_seconds")
        assert staleness.state()[3] >= 1  # observed at the request sync


class TestHookHygiene:
    def test_on_round_callback_chained_and_restored(self, scenario):
        """Regression: the engine used to overwrite a caller's on_round
        permanently; it must chain to it and put it back after the run."""
        calls = []

        def mine(rounds, utility, queries, committed):
            calls.append(rounds)

        engine = DiscoveryEngine(corpus=scenario.corpus)
        captured = {}
        original_factory = engine.searchers.get("metam")

        def capturing_factory(*args, **kwargs):
            searcher = original_factory(*args, **kwargs)
            searcher.on_round = mine
            captured["searcher"] = searcher
            return searcher

        engine.searchers.register(
            "metam-hooked", capturing_factory, overwrite=False
        )
        run = engine.discover(request_for(scenario, searcher="metam-hooked"))
        assert run.completed
        # The caller's callback saw every round the event stream did...
        assert len(calls) == len(run.events_of("round-completed"))
        assert calls, "caller's on_round never invoked"
        # ...and the instance attribute is back to exactly the caller's.
        assert captured["searcher"].on_round is mine

    def test_on_round_restored_to_class_default(self, scenario):
        """A searcher with no instance-level on_round must come back
        with the class default visible again (no stale shadow)."""
        engine = DiscoveryEngine(corpus=scenario.corpus)
        captured = {}
        original_factory = engine.searchers.get("metam")

        def capturing_factory(*args, **kwargs):
            searcher = original_factory(*args, **kwargs)
            captured["searcher"] = searcher
            return searcher

        engine.searchers.register("metam-capture", capturing_factory)
        engine.discover(request_for(scenario, searcher="metam-capture"))
        searcher = captured["searcher"]
        assert "on_round" not in searcher.__dict__
        assert searcher.on_round is Metam.on_round is None


class TestRecordCacheInfo:
    def test_cache_info_lifecycle(self, scenario):
        engine = DiscoveryEngine(
            corpus=scenario.corpus, result_cache_bytes=8 << 20
        )
        request = cacheable_request(engine, scenario)
        cold = engine.discover(request)
        assert cold.cache_info == {
            "prepare_source": "prepared",
            "prepare_cache_hit": False,
            "result_cache_hit": False,
        }
        warm = engine.discover(request)
        assert warm.cache_info["result_cache_hit"] is True
        assert warm.cache_info["result_cache_tier"] == "memory"
        # The replay's record still knows how its original prepared.
        assert warm.cache_info["prepare_source"] == "prepared"
        assert warm.to_record()["caches"] == warm.cache_info

    def test_from_record_defaults_empty_caches(self, scenario):
        from repro.api.run import DiscoveryRun

        engine = DiscoveryEngine(corpus=scenario.corpus)
        run = engine.discover(request_for(scenario))
        record = run.to_record()
        del record["caches"]  # a pre-PR-6 archived record
        rebuilt = DiscoveryRun.from_record(record, run.request, run_id=1)
        assert rebuilt.cache_info == {}
