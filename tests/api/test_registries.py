"""Tests for the pluggable searcher/task/scenario registries."""

import pytest

from repro.api import (
    DiscoveryEngine,
    DiscoveryRequest,
    Registry,
    RegistryError,
    default_scenarios,
    default_searchers,
    default_tasks,
)
from repro.core.result import SearchResult
from repro.data import clustering_scenario


class TestRegistry:
    def test_register_and_create(self):
        registry = Registry("widget")
        registry.register("a", lambda x: x + 1)
        assert registry.create("a", 2) == 3
        assert "a" in registry
        assert registry.names() == ["a"]

    def test_decorator_registration(self):
        registry = Registry("widget")

        @registry.register("b")
        def build():
            return "built"

        assert registry.create("b") == "built"
        assert build() == "built"  # decorator returns the factory

    def test_duplicate_rejected_without_overwrite(self):
        registry = Registry("widget")
        registry.register("a", lambda: 1)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("a", lambda: 2)
        registry.register("a", lambda: 2, overwrite=True)
        assert registry.create("a") == 2

    def test_unknown_name_lists_choices(self):
        registry = Registry("widget")
        registry.register("alpha", lambda: 1)
        with pytest.raises(RegistryError, match=r"unknown widget 'beta'.*alpha"):
            registry.get("beta")

    def test_unregister(self):
        registry = Registry("widget")
        registry.register("a", lambda: 1)
        registry.unregister("a")
        assert "a" not in registry
        with pytest.raises(RegistryError):
            registry.unregister("a")


class TestDefaults:
    def test_builtin_searchers_present(self):
        names = set(default_searchers().names())
        assert {
            "metam", "eq", "nc", "nceq",
            "mw", "overlap", "uniform", "iarda", "join_everything",
        } <= names

    def test_builtin_tasks_present(self):
        names = set(default_tasks().names())
        assert {"classification", "regression", "clustering", "fairness"} <= names

    def test_builtin_scenarios_present(self):
        names = set(default_scenarios().names())
        assert {"housing", "clustering", "sat-whatif", "fairness"} <= names

    def test_cli_scenarios_mirror_registry(self):
        from repro.cli import SCENARIOS

        assert set(SCENARIOS) == set(default_scenarios().names())


class TestPluggability:
    def test_custom_searcher_plugs_in_without_touching_core(self):
        scenario = clustering_scenario(seed=0)
        engine = DiscoveryEngine(corpus=scenario.corpus)

        class FirstCandidateSearcher:
            """Degenerate strategy: query the first candidate, done."""

            def __init__(self, candidates, base, corpus, task, budget):
                from repro.core.querying import QueryEngine

                self.candidates = list(candidates)
                self.engine = QueryEngine(
                    task, base, corpus, self.candidates, budget=budget
                )

            def run(self):
                aug_id = self.candidates[0].aug_id
                utility = self.engine.utility({aug_id})
                return SearchResult(
                    searcher="first",
                    selected=[aug_id],
                    utility=utility,
                    base_utility=self.engine.base_utility(),
                    queries=self.engine.queries,
                    trace=list(self.engine.trace),
                )

        @engine.searchers.register("first")
        def build(candidates, base, corpus, task, *, theta, query_budget,
                  seed, config=None, **options):
            return FirstCandidateSearcher(
                candidates, base, corpus, task, budget=query_budget
            )

        run = engine.discover(
            DiscoveryRequest(
                base=scenario.base,
                task=scenario.task,
                searcher="first",
                query_budget=10,
            )
        )
        assert run.completed
        assert run.result.searcher == "first"
        assert run.result.queries == 2
        # The plug-in searcher's queries stream events like built-ins.
        assert len(run.events_of("query-issued")) == 2

    def test_custom_task_plugs_in_by_name(self):
        scenario = clustering_scenario(seed=0)
        engine = DiscoveryEngine(corpus=scenario.corpus)

        @engine.tasks.register("column_count")
        class ColumnCountTask:
            name = "column_count"

            def __init__(self, cap=50):
                self.cap = cap

            def utility(self, table):
                return min(1.0, table.num_columns / self.cap)

        run = engine.discover(
            DiscoveryRequest(
                base=scenario.base,
                task="column_count",
                task_options={"cap": 10},
                searcher="uniform",
                theta=0.95,
                query_budget=12,
            )
        )
        assert run.completed
        assert run.result.utility >= run.result.base_utility
