"""The engine-level result cache: exact replays of recorded runs."""

import pytest

from repro.api import CancellationToken, DiscoveryEngine, DiscoveryRequest
from repro.core.config import MetamConfig
from repro.data import clustering_scenario
from repro.dataframe.table import Table

CACHE_BYTES = 8 << 20

#: The clustering scenario's task, expressed as a registry name — only
#: name-based tasks have a canonical identity, so only they are
#: cacheable.
TASK_OPTIONS = {
    "score_column": "satiety_score",
    "n_clusters": 3,
    "exclude_columns": ("ingredient_id",),
    "seed": 0,
}


@pytest.fixture(scope="module")
def scenario():
    return clustering_scenario(seed=0)


def request_for(scenario, **overrides):
    fields = dict(
        base=scenario.base,
        task="clustering",
        task_options=dict(TASK_OPTIONS),
        searcher="metam",
        config=MetamConfig(theta=0.6, query_budget=25, epsilon=0.1, seed=0),
    )
    fields.update(overrides)
    return DiscoveryRequest(**fields)


def seeded(scenario, seed):
    return request_for(
        scenario,
        seed=seed,
        config=MetamConfig(theta=0.6, query_budget=25, epsilon=0.1, seed=seed),
    )


def cached_engine(scenario, **overrides):
    options = dict(corpus=scenario.corpus, result_cache_bytes=CACHE_BYTES)
    options.update(overrides)
    return DiscoveryEngine(**options)


class TestHits:
    def test_identical_request_replays(self, scenario):
        engine = cached_engine(scenario)
        first = engine.discover(request_for(scenario))
        second = engine.discover(request_for(scenario))
        assert not first.cached
        assert second.cached
        assert second.run_id != first.run_id
        assert second.result.selected == first.result.selected
        assert second.result.trace == first.result.trace
        assert second.result.utility == first.result.utility
        # Replays carry the recorded events and timings.
        assert [e.kind for e in second.events] == [e.kind for e in first.events]
        assert second.search_seconds == first.search_seconds
        stats = engine.stats()
        assert stats["result_cache_hits"] == 1
        assert stats["result_cache_entries"] == 1
        assert stats["result_cache_bytes"] > 0
        assert stats["runs_started"] == 2
        assert stats["runs_completed"] == 2
        assert stats["queries_served"] == 2 * first.result.queries

    def test_replay_streams_recorded_events(self, scenario):
        engine = cached_engine(scenario)
        first = engine.discover(request_for(scenario))
        seen = []
        second = engine.discover(request_for(scenario), progress=seen.append)
        assert second.cached
        assert seen == first.events

    def test_record_marks_cached(self, scenario):
        engine = cached_engine(scenario)
        engine.discover(request_for(scenario))
        record = engine.discover(request_for(scenario)).to_record()
        assert record["cached"] is True

    def test_replay_matches_uncached_engine(self, scenario):
        plain = DiscoveryEngine(corpus=scenario.corpus)
        reference = plain.discover(request_for(scenario))
        engine = cached_engine(scenario)
        engine.discover(request_for(scenario))
        replay = engine.discover(request_for(scenario))
        assert replay.result.selected == reference.result.selected
        assert replay.result.trace == reference.result.trace

    def test_different_requests_miss(self, scenario):
        engine = cached_engine(scenario)
        engine.discover(request_for(scenario))
        other = engine.discover(seeded(scenario, seed=1))
        assert not other.cached
        assert engine.stats()["result_cache_hits"] == 0
        assert engine.stats()["result_cache_entries"] == 2


class TestBypasses:
    def test_disabled_by_default(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        engine.discover(request_for(scenario))
        second = engine.discover(request_for(scenario))
        assert not second.cached
        assert engine.stats()["result_cache_hits"] == 0

    def test_supplied_candidates_bypass(self, scenario):
        engine = cached_engine(scenario)
        candidates = engine.prepare(scenario.base, seed=0)
        request = request_for(scenario, candidates=candidates)
        engine.discover(request)
        assert not engine.discover(request).cached

    def test_task_objects_bypass(self, scenario):
        # A live task object has no canonical identity.
        request = request_for(scenario, task=scenario.task, task_options={})
        assert request.cache_descriptor() is None
        engine = cached_engine(scenario)
        engine.discover(request)
        assert not engine.discover(request).cached

    def test_non_canonical_options_bypass(self, scenario):
        request = request_for(scenario, options={"callback": object()})
        assert request.cache_descriptor() is None

    def test_pre_cancelled_token_bypasses_cache(self, scenario):
        # A cancelled token must yield a cancelled run even when an
        # identical completed run is recorded — never a happy replay.
        engine = cached_engine(scenario)
        engine.discover(request_for(scenario))
        token = CancellationToken()
        token.cancel()
        run = engine.discover(request_for(scenario), cancel=token)
        assert run.cancelled
        assert not run.cached

    def test_cancelled_runs_not_cached(self, scenario):
        engine = cached_engine(scenario)
        token = CancellationToken()
        token.cancel()
        run = engine.discover(request_for(scenario), cancel=token)
        assert run.cancelled
        assert engine.stats()["result_cache_entries"] == 0


class TestInvalidation:
    def test_attach_corpus_clears(self, scenario):
        engine = cached_engine(scenario)
        engine.discover(request_for(scenario))
        assert engine.stats()["result_cache_entries"] == 1
        engine.attach_corpus(scenario.corpus)
        assert engine.stats()["result_cache_entries"] == 0
        assert not engine.discover(request_for(scenario)).cached

    def test_mid_run_corpus_swap_cannot_serve_stale_replay(self, scenario):
        """A run in flight across an ``attach_corpus`` lands under the
        superseded corpus epoch — requests against the new corpus can
        never replay it."""
        engine = cached_engine(scenario)

        def invalidate_mid_run(event):
            if event.kind == "query-issued" and event.query_index == 1:
                engine.attach_corpus(scenario.corpus)

        run = engine.discover(
            request_for(scenario), progress=invalidate_mid_run
        )
        assert run.completed
        follow_up = engine.discover(request_for(scenario))
        assert not follow_up.cached  # old-epoch entry is unreachable
        assert engine.discover(request_for(scenario)).cached  # new epoch

    def test_catalog_content_change_clears(self, scenario, tmp_path):
        from repro.catalog import Catalog

        catalog = Catalog.open(str(tmp_path / "cat"))
        engine = DiscoveryEngine(
            corpus=scenario.corpus,
            catalog=catalog,
            result_cache_bytes=CACHE_BYTES,
        )
        engine.discover(request_for(scenario))
        assert engine.stats()["result_cache_entries"] == 1
        # Another writer grew the catalog behind the engine's back; the
        # next *prepare* (a new key, so the prepared-candidate cache
        # does not short-circuit it) observes the changed diff and must
        # drop every recorded result.
        catalog.add(Table("foreign_t", {"k": ["a", "b"], "v": [1, 2]}))
        engine.discover(seeded(scenario, seed=1))
        entries = engine.stats()["result_cache_entries"]
        assert entries == 1  # seed-1 run recorded after the wipe
        assert not engine.discover(request_for(scenario)).cached

    def test_out_of_band_catalog_mutation_blocks_identical_replay(
        self, scenario, tmp_path
    ):
        """Mutating the public catalog directly must make even the
        *identical* request miss — the mutation count is part of the
        cache key, so no prepare needs to run for staleness to show."""
        from repro.catalog import Catalog

        catalog = Catalog.open(str(tmp_path / "cat"))
        engine = DiscoveryEngine(
            corpus=scenario.corpus,
            catalog=catalog,
            result_cache_bytes=CACHE_BYTES,
        )
        engine.discover(request_for(scenario))
        assert engine.discover(request_for(scenario)).cached
        catalog.add(Table("foreign_t", {"k": ["a", "b"], "v": [1, 2]}))
        assert not engine.discover(request_for(scenario)).cached

    def test_searcher_reregistration_blocks_replay(self, scenario):
        """Replacing a searcher factory under the same name must not
        replay runs recorded under the old factory."""
        engine = cached_engine(scenario)
        engine.discover(request_for(scenario))
        assert engine.discover(request_for(scenario)).cached
        original = engine.searchers.get("metam")
        engine.searchers.register("metam", original, overwrite=True)
        assert not engine.discover(request_for(scenario)).cached

    def test_replay_progress_failure_counts_as_failed(self, scenario):
        engine = cached_engine(scenario)
        engine.discover(request_for(scenario))

        def explode(event):
            raise RuntimeError("progress bug")

        with pytest.raises(RuntimeError, match="progress bug"):
            engine.discover(request_for(scenario), progress=explode)
        stats = engine.stats()
        assert stats["runs_failed"] == 1
        assert stats["runs_started"] == (
            stats["runs_completed"]
            + stats["runs_cancelled"]
            + stats["runs_failed"]
        )


class TestBudget:
    def test_oversized_run_not_stored(self, scenario):
        engine = cached_engine(scenario, result_cache_bytes=64)
        engine.discover(request_for(scenario))
        assert engine.stats()["result_cache_entries"] == 0
        assert not engine.discover(request_for(scenario)).cached

    def test_budget_evicts_lru(self, scenario):
        engine = cached_engine(scenario)
        first = request_for(scenario)
        engine.discover(first)
        size = engine.stats()["result_cache_bytes"]
        # Shrink the budget to just over one record: the next distinct
        # request evicts the first.
        engine._results.max_bytes = int(size * 1.5)
        engine.discover(seeded(scenario, seed=1))
        assert engine.stats()["result_cache_entries"] == 1
        assert not engine.discover(first).cached  # evicted

    def test_result_cache_bytes_validated(self, scenario):
        with pytest.raises(ValueError, match="max_bytes"):
            DiscoveryEngine(corpus=scenario.corpus, result_cache_bytes=-1)
