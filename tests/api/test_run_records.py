"""Round-trips of events and run records (the persistent tier's codec)."""

import pytest

from repro.api.events import (
    EVENT_TYPES,
    CandidatesPrepared,
    QueryIssued,
    RunStarted,
)
from repro.api.run import DiscoveryRun
from repro.api.request import DiscoveryRequest
from repro.api.wire import event_from_wire
from repro.core.result import SearchResult
from repro.dataframe.table import Table


def sample_events():
    return [
        RunStarted(run_id=3, searcher="metam", base_table="b", task="t"),
        CandidatesPrepared(n_candidates=7, source="prepared", seconds=0.25),
        QueryIssued(query_index=1, utility=0.5, best_utility=0.5),
    ]


class TestEventRoundTrip:
    def test_every_kind_round_trips(self):
        for event in sample_events():
            assert event_from_wire(event.to_record()) == event

    def test_kind_registry_is_complete(self):
        assert set(EVENT_TYPES) == {
            "run-started",
            "candidates-prepared",
            "query-issued",
            "augmentation-accepted",
            "round-completed",
            "run-completed",
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_wire({"kind": "from-the-future"})

    def test_mismatched_fields_rejected(self):
        with pytest.raises(ValueError, match="bad 'query-issued'"):
            event_from_wire({"kind": "query-issued", "bogus": 1})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="must be a dict"):
            event_from_wire(["kind", "run-started"])


def sample_run(request):
    return DiscoveryRun(
        run_id=5,
        request=request,
        status="completed",
        result=SearchResult(
            searcher="metam",
            selected=["aug-1"],
            utility=0.8,
            base_utility=0.5,
            queries=4,
            trace=[(1, 0.5), (4, 0.8)],
        ),
        events=sample_events(),
        n_candidates=7,
        candidate_source="prepared",
        prepare_seconds=0.25,
        search_seconds=1.5,
    )


class TestRunRecordRoundTrip:
    def test_round_trip(self):
        request = DiscoveryRequest(
            base=Table("b", {"c": ["x"]}), task="clustering"
        )
        run = sample_run(request)
        rebuilt = DiscoveryRun.from_record(run.to_record(), request, run_id=9)
        assert rebuilt.run_id == 9
        assert rebuilt.status == "completed"
        assert rebuilt.result.selected == run.result.selected
        assert rebuilt.result.trace == run.result.trace
        assert rebuilt.events == run.events
        assert rebuilt.n_candidates == 7
        assert rebuilt.prepare_seconds == 0.25
        assert rebuilt.search_seconds == 1.5

    def test_cancelled_run_round_trips_without_result(self):
        request = DiscoveryRequest(
            base=Table("b", {"c": ["x"]}), task="clustering"
        )
        run = sample_run(request)
        run.status = "cancelled"
        run.result = None
        rebuilt = DiscoveryRun.from_record(run.to_record(), request, run_id=1)
        assert rebuilt.cancelled
        assert rebuilt.result is None

    def test_malformed_record_raises(self):
        request = DiscoveryRequest(
            base=Table("b", {"c": ["x"]}), task="clustering"
        )
        with pytest.raises((KeyError, ValueError, TypeError)):
            DiscoveryRun.from_record({"events": [{"kind": "??"}]}, request, 1)
