"""Async serving: ``engine.submit``, futures, and striped preparation."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import (
    CancellationToken,
    DiscoveryEngine,
    DiscoveryRequest,
    RunCancelled,
)
from repro.core.config import MetamConfig
from repro.data import clustering_scenario


@pytest.fixture(scope="module")
def scenario():
    return clustering_scenario(seed=0)


def request_for(scenario, seed=0):
    return DiscoveryRequest(
        base=scenario.base,
        task=scenario.task,
        searcher="metam",
        seed=seed,
        prepare_seed=0,
        config=MetamConfig(theta=0.6, query_budget=25, epsilon=0.1, seed=seed),
    )


class TestSubmit:
    def test_submit_matches_discover(self, scenario):
        sync_engine = DiscoveryEngine(corpus=scenario.corpus)
        reference = sync_engine.discover(request_for(scenario))

        engine = DiscoveryEngine(corpus=scenario.corpus)
        future = engine.submit(request_for(scenario))
        run = future.result(timeout=120)
        assert future.done()
        assert run.completed
        assert run.result.selected == reference.result.selected
        assert run.result.trace == reference.result.trace
        engine.shutdown()

    def test_concurrent_submits_share_prepare(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus, max_workers=4)
        futures = [
            engine.submit(request_for(scenario, seed=seed)) for seed in range(4)
        ]
        runs = [f.result(timeout=300) for f in futures]
        assert all(run.completed for run in runs)
        stats = engine.stats()
        assert stats["prepared_candidate_sets"] == 1  # prepare_seed pinned
        assert stats["runs_completed"] == 4
        assert stats["async_pool_active"]
        engine.shutdown()
        assert not engine.stats()["async_pool_active"]

    def test_queued_submit_cancelled_before_start(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus, max_workers=1)
        engine.prepare(scenario.base, seed=0)
        gate = threading.Event()
        release = threading.Event()

        def blocking_progress(event):
            gate.set()
            release.wait(timeout=60)

        first = engine.submit(request_for(scenario), progress=blocking_progress)
        queued = engine.submit(request_for(scenario, seed=1))
        assert gate.wait(timeout=60)  # first run occupies the only worker
        queued.cancel()
        release.set()
        with pytest.raises(RunCancelled):
            queued.result(timeout=60)
        assert first.result(timeout=120).completed
        engine.shutdown()

    def test_cancel_mid_run_resolves_to_cancelled_run(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        token = CancellationToken()
        seen = []

        def progress(event):
            seen.append(event)
            if event.kind == "query-issued" and event.query_index >= 2:
                token.cancel()

        future = engine.submit(
            request_for(scenario), progress=progress, cancel=token
        )
        run = future.result(timeout=120)
        assert run.cancelled
        assert run.result is None
        assert future.cancel_token is token
        engine.shutdown()

    def test_done_callback_fires(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        resolved = []
        future = engine.submit(request_for(scenario))
        future.add_done_callback(lambda f: resolved.append(f.result().status))
        future.result(timeout=120)
        engine.shutdown()  # drains the pool; callback has run by now
        assert resolved == ["completed"]

    def test_context_manager_shuts_down(self, scenario):
        with DiscoveryEngine(corpus=scenario.corpus) as engine:
            run = engine.submit(request_for(scenario)).result(timeout=120)
            assert run.completed
        assert not engine.stats()["async_pool_active"]
        # The engine stays usable after shutdown: a new submit lazily
        # rebuilds the pool.
        assert engine.submit(request_for(scenario)).result(timeout=120).completed
        engine.shutdown()

    def test_max_workers_validated(self, scenario):
        with pytest.raises(ValueError, match="max_workers"):
            DiscoveryEngine(corpus=scenario.corpus, max_workers=0)


CACHE = 8 << 20

TASK_OPTIONS = {
    "score_column": "satiety_score",
    "n_clusters": 3,
    "exclude_columns": ("ingredient_id",),
    "seed": 0,
}


def cacheable_request(scenario, seed=0):
    """A request with a canonical identity (name-based task), so the
    engine's result cache — and submit's in-flight reservations —
    apply."""
    return DiscoveryRequest(
        base=scenario.base,
        task="clustering",
        task_options=dict(TASK_OPTIONS),
        searcher="metam",
        seed=seed,
        prepare_seed=0,
        config=MetamConfig(theta=0.6, query_budget=25, epsilon=0.1, seed=seed),
    )


class TestReservations:
    """Result-cache slot reservations for in-flight submits."""

    def _blocked_engine(self, scenario):
        """An engine whose single worker is pinned by a long run,
        so further submissions stay queued."""
        engine = DiscoveryEngine(
            corpus=scenario.corpus, max_workers=1, result_cache_bytes=CACHE
        )
        engine.prepare(scenario.base, seed=0)
        gate = threading.Event()
        release = threading.Event()

        def blocking_progress(event):
            gate.set()
            release.wait(timeout=60)

        blocker = engine.submit(
            request_for(scenario, seed=7), progress=blocking_progress
        )
        assert gate.wait(timeout=60)
        return engine, blocker, release

    def test_cancelled_queued_future_releases_reservation(self, scenario):
        """The regression: a cacheable submit cancelled while still
        queued never executes, so its reservation must be released by
        the future's done callback — anything else leaks the slot until
        shutdown (and strands any follower waiting on it)."""
        engine, blocker, release = self._blocked_engine(scenario)
        queued = engine.submit(cacheable_request(scenario))
        assert engine.stats()["result_cache_reserved"] == 1
        queued.cancel()
        # Cancellation of a queued future resolves it immediately; the
        # done callback must have dropped the reservation right here,
        # not at shutdown.
        assert engine.stats()["result_cache_reserved"] == 0
        release.set()
        with pytest.raises(RunCancelled):
            queued.result(timeout=60)
        assert blocker.result(timeout=120).completed
        engine.shutdown()
        assert engine.stats()["result_cache_reserved"] == 0

    def test_follower_not_stranded_by_cancelled_owner(self, scenario):
        """A follower waiting on a reservation whose owner is cancelled
        while queued must run its own search, not wait forever."""
        engine, blocker, release = self._blocked_engine(scenario)
        owner = engine.submit(cacheable_request(scenario))
        follower = engine.submit(cacheable_request(scenario))
        assert engine.stats()["result_cache_reserved"] == 1
        owner.cancel()
        assert engine.stats()["result_cache_reserved"] == 0
        release.set()
        run = follower.result(timeout=120)
        assert run.completed
        assert not run.cached  # the owner never populated the cache
        assert blocker.result(timeout=120).completed
        engine.shutdown()

    def test_identical_inflight_submits_run_once(self, scenario):
        """Single-flight: an identical request submitted while one is
        in flight waits for the owner and replays its record instead of
        searching twice."""
        engine = DiscoveryEngine(
            corpus=scenario.corpus, max_workers=2, result_cache_bytes=CACHE
        )
        engine.prepare(scenario.base, seed=0)
        owner = engine.submit(cacheable_request(scenario))
        follower = engine.submit(cacheable_request(scenario))
        first = owner.result(timeout=120)
        second = follower.result(timeout=120)
        assert first.completed and not first.cached
        assert second.cached
        assert second.result.selected == first.result.selected
        stats = engine.stats()
        assert stats["result_cache_hits"] == 1
        assert stats["result_cache_reserved"] == 0
        engine.shutdown()

    def test_racing_identical_submits_never_deadlock(self, scenario):
        """Reservation registration and enqueueing are atomic: across
        many racing identical submits on a single worker, a follower
        can never land in the queue ahead of its owner (which would
        park the only worker on wait() forever)."""
        engine = DiscoveryEngine(
            corpus=scenario.corpus, max_workers=1, result_cache_bytes=CACHE
        )
        engine.prepare(scenario.base, seed=0)
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = list(
                pool.map(
                    lambda _: engine.submit(cacheable_request(scenario)),
                    range(4),
                )
            )
        runs = [f.result(timeout=300) for f in futures]
        assert all(run.completed for run in runs)
        first = [run for run in runs if not run.cached]
        assert len(first) == 1  # the search executed exactly once
        assert engine.stats()["result_cache_reserved"] == 0
        engine.shutdown()

    def test_reservation_released_after_normal_completion(self, scenario):
        engine = DiscoveryEngine(
            corpus=scenario.corpus, result_cache_bytes=CACHE
        )
        future = engine.submit(cacheable_request(scenario))
        assert future.result(timeout=120).completed
        assert engine.stats()["result_cache_reserved"] == 0
        engine.shutdown()

    def test_uncacheable_submits_take_no_reservation(self, scenario):
        engine, blocker, release = self._blocked_engine(scenario)
        # Task objects have no canonical identity — uncacheable.
        queued = engine.submit(request_for(scenario, seed=3))
        assert engine.stats()["result_cache_reserved"] == 0
        queued.cancel()
        release.set()
        assert blocker.result(timeout=120).completed
        engine.shutdown()


class TestStripedPrepare:
    @pytest.mark.parametrize("striped", [True, False])
    def test_disjoint_keys_match_sequential(self, scenario, striped):
        reference = {}
        for seed in range(3):
            engine = DiscoveryEngine(corpus=scenario.corpus)
            reference[seed] = engine.prepare(scenario.base, seed=seed)

        shared = DiscoveryEngine(
            corpus=scenario.corpus, striped_prepare=striped
        )
        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = {
                seed: pool.submit(shared.prepare, scenario.base, seed=seed)
                for seed in range(3)
            }
            prepared = {seed: f.result() for seed, f in futures.items()}
        for seed, got in prepared.items():
            want = reference[seed]
            assert [c.aug_id for c in got] == [c.aug_id for c in want]
            for a, b in zip(got, want, strict=True):
                assert np.array_equal(a.profile_vector, b.profile_vector)
        assert shared.stats()["prepared_candidate_sets"] == 3
        assert shared.stats()["active_prepares"] == 0  # key locks cleaned up

    def test_same_key_still_prepared_once(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(
                pool.map(
                    lambda _: engine.prepare(scenario.base, seed=0), range(4)
                )
            )
        assert engine.stats()["prepared_candidate_sets"] == 1
        first = [c.aug_id for c in results[0]]
        assert all([c.aug_id for c in r] == first for r in results)

    def test_warm_catalog_prepare_concurrent(self, scenario, tmp_path):
        """Striped prepare with a catalog attached: catalog mutations are
        internally serialized, results stay byte-identical."""
        root = str(tmp_path / "cat")
        cold = DiscoveryEngine.open(root, corpus=scenario.corpus)
        reference = {
            seed: cold.prepare(scenario.base, seed=seed) for seed in range(3)
        }
        warm = DiscoveryEngine.open(root, corpus=scenario.corpus)
        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = {
                seed: pool.submit(warm.prepare, scenario.base, seed=seed)
                for seed in range(3)
            }
            prepared = {seed: f.result() for seed, f in futures.items()}
        for seed, got in prepared.items():
            want = reference[seed]
            assert [c.aug_id for c in got] == [c.aug_id for c in want]
            for a, b in zip(got, want, strict=True):
                assert np.array_equal(a.profile_vector, b.profile_vector)
