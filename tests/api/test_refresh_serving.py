"""Engine + refresher integration: atomic snapshot swap between requests.

The engine adopts the refresher's published snapshots at request
boundaries: corpus, catalog, and the caches keyed on them change
together; runs already in flight keep the snapshot they started with;
and a ``staleness_budget`` bounds how old the served snapshot may be.
"""

import time

import pytest

from repro.api import DiscoveryEngine, DiscoveryRequest
from repro.catalog import CatalogRefresher
from repro.core.config import MetamConfig
from repro.data import clustering_scenario
from repro.dataframe.table import Table

CACHE = 8 << 20

TASK_OPTIONS = {
    "score_column": "satiety_score",
    "n_clusters": 3,
    "exclude_columns": ("ingredient_id",),
    "seed": 0,
}


@pytest.fixture(scope="module")
def scenario():
    return clustering_scenario(seed=0)


def request_for(scenario):
    return DiscoveryRequest(
        base=scenario.base,
        task="clustering",
        task_options=dict(TASK_OPTIONS),
        searcher="metam",
        config=MetamConfig(theta=0.6, query_budget=25, epsilon=0.1, seed=0),
    )


class MutableSource:
    def __init__(self, corpus):
        self.corpus = dict(corpus)

    def __call__(self):
        return self.corpus

    def mutate(self, name):
        table = self.corpus[name]
        columns = {c: list(table.column(c)) for c in table.column_names}
        columns[table.column_names[0]] = [
            f"mut-{v}" for v in columns[table.column_names[0]]
        ]
        corpus = dict(self.corpus)
        corpus[name] = Table(name, columns)
        self.corpus = corpus


class TestSnapshotSwap:
    def test_engine_serves_from_snapshot(self, scenario, tmp_path):
        source = MutableSource(scenario.corpus)
        refresher = CatalogRefresher(source, store=str(tmp_path / "cat"))
        engine = DiscoveryEngine(refresher=refresher)
        # No attach_corpus: the snapshot supplies the corpus.
        run = engine.discover(request_for(scenario))
        assert run.completed
        stats = engine.stats()
        assert stats["refresher_attached"]
        assert stats["snapshot_epoch"] == 1
        assert stats["corpus_tables"] == len(scenario.corpus)

    def test_swap_happens_between_requests(self, scenario, tmp_path):
        source = MutableSource(scenario.corpus)
        refresher = CatalogRefresher(source, store=str(tmp_path / "cat"))
        engine = DiscoveryEngine(
            refresher=refresher, result_cache_bytes=CACHE
        )
        first = engine.discover(request_for(scenario))
        assert engine.discover(request_for(scenario)).cached
        # Mutate a corpus table; the refresher notices on its next
        # cycle and the engine swaps at the next request boundary.
        mutated = sorted(
            name for name in source.corpus if name != scenario.base.name
        )[0]
        source.mutate(mutated)
        refresher.refresh_now()
        second = engine.discover(request_for(scenario))
        assert not second.cached  # snapshot swap invalidated the cache
        assert engine.stats()["snapshot_epoch"] == 2
        assert first.completed and second.completed

    def test_unchanged_cycle_keeps_result_cache(self, scenario, tmp_path):
        """Golden companion: refresh cycles over an unchanged corpus
        republish the same snapshot, so the engine swaps nothing and
        cached results keep replaying — no spurious invalidation."""
        refresher = CatalogRefresher(
            lambda: scenario.corpus, store=str(tmp_path / "cat")
        )
        engine = DiscoveryEngine(
            refresher=refresher, result_cache_bytes=CACHE
        )
        engine.discover(request_for(scenario))
        for _ in range(3):
            refresher.refresh_now()
            assert engine.discover(request_for(scenario)).cached
        assert engine.stats()["snapshot_epoch"] == 1
        assert engine.stats()["result_cache_hits"] == 3

    def test_matches_refresherless_engine(self, scenario, tmp_path):
        """Serving through a refresher snapshot must reproduce the
        plain engine's results (the catalog seed matches the request's
        prepare seed here, so warm-start discovery is equivalent)."""
        reference = DiscoveryEngine(corpus=scenario.corpus).discover(
            request_for(scenario)
        )
        refresher = CatalogRefresher(
            lambda: scenario.corpus, store=str(tmp_path / "cat"), seed=0
        )
        engine = DiscoveryEngine(refresher=refresher)
        run = engine.discover(request_for(scenario))
        assert run.result.selected == reference.result.selected
        assert run.result.trace == reference.result.trace

    def test_staleness_budget_forces_reverify(self, scenario, tmp_path):
        source = MutableSource(scenario.corpus)
        refresher = CatalogRefresher(source, store=str(tmp_path / "cat"))
        engine = DiscoveryEngine(refresher=refresher, staleness_budget=30.0)
        engine.discover(request_for(scenario))
        cycles = refresher.cycles
        # Within budget: no extra cycle.
        engine.discover(request_for(scenario))
        assert refresher.cycles == cycles
        # Per-request override below the elapsed age: one synchronous
        # re-verification cycle runs before serving.
        time.sleep(0.05)
        engine.discover(request_for(scenario), staleness_budget=0.01)
        assert refresher.cycles == cycles + 1
        assert engine.last_sync_staleness <= 1.0

    def test_refresher_with_background_thread_serves(self, scenario, tmp_path):
        source = MutableSource(scenario.corpus)
        refresher = CatalogRefresher(
            source, store=str(tmp_path / "cat"), interval=0.05
        )
        with refresher:
            engine = DiscoveryEngine(refresher=refresher)
            run = engine.discover(request_for(scenario))
            assert run.completed
            mutated = sorted(
                name for name in source.corpus if name != scenario.base.name
            )[0]
            source.mutate(mutated)
            deadline = time.monotonic() + 10
            while (
                refresher.current().epoch < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert refresher.current().epoch == 2
            follow_up = engine.discover(request_for(scenario))
            assert follow_up.completed
            assert engine.stats()["snapshot_epoch"] == 2
