"""Tests for the session-oriented DiscoveryEngine API."""

import json
import warnings

import numpy as np
import pytest

from repro.api import (
    CancellationToken,
    CandidateSpec,
    DiscoveryEngine,
    DiscoveryRequest,
    EngineStateError,
    RegistryError,
)
from repro.core.config import MetamConfig
from repro.core.metam import Metam
from repro.data import clustering_scenario, housing_scenario

CONFIG = dict(theta=0.6, query_budget=25, epsilon=0.1, seed=0)


@pytest.fixture(scope="module")
def scenario():
    return clustering_scenario(seed=0)


@pytest.fixture(scope="module")
def engine(scenario):
    return DiscoveryEngine(corpus=scenario.corpus)


def request_for(scenario, **overrides):
    fields = dict(
        base=scenario.base,
        task=scenario.task,
        searcher="metam",
        config=MetamConfig(**CONFIG),
    )
    fields.update(overrides)
    return DiscoveryRequest(**fields)


class TestEngineState:
    def test_corpus_required(self, scenario):
        engine = DiscoveryEngine()
        with pytest.raises(EngineStateError, match="attach_corpus"):
            engine.discover(request_for(scenario))

    def test_attach_corpus_accepts_iterable_and_dict(self, scenario):
        tables = list(scenario.corpus.values())
        from_iterable = DiscoveryEngine().attach_corpus(tables)
        from_dict = DiscoveryEngine().attach_corpus(scenario.corpus)
        assert from_iterable.corpus == from_dict.corpus

    def test_attach_corpus_rejects_duplicates(self, scenario):
        tables = list(scenario.corpus.values())
        clone = tables[0].with_column("extra", [0] * tables[0].num_rows)
        with pytest.raises(ValueError, match="duplicate"):
            DiscoveryEngine().attach_corpus(tables + [clone])

    def test_open_creates_and_reopens_catalog(self, tmp_path, scenario):
        root = str(tmp_path / "cat")
        engine = DiscoveryEngine.open(root, corpus=scenario.corpus, seed=0)
        engine.prepare(scenario.base)
        assert engine.catalog is not None
        engine.catalog.save()
        reopened = DiscoveryEngine.open(root, corpus=scenario.corpus)
        assert reopened.catalog.config == engine.catalog.config

    def test_open_create_false_requires_catalog(self, tmp_path):
        from repro.catalog import CatalogStoreError

        with pytest.raises(CatalogStoreError):
            DiscoveryEngine.open(str(tmp_path / "absent"), create=False)


class TestPrepare:
    def test_prepare_matches_legacy(self, engine, scenario):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro import prepare_candidates

            legacy = prepare_candidates(scenario.base, scenario.corpus, seed=0)
        fresh = engine.prepare(scenario.base, seed=0)
        assert [c.aug_id for c in fresh] == [c.aug_id for c in legacy]
        for a, b in zip(fresh, legacy, strict=True):
            assert np.array_equal(a.profile_vector, b.profile_vector)

    def test_prepare_cached_across_calls(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        first = engine.prepare(scenario.base, seed=0)
        second = engine.prepare(scenario.base, seed=0)
        # Same Candidate objects (served from cache), fresh list shells.
        assert [id(c) for c in first] == [id(c) for c in second]
        assert first is not second
        assert engine.stats()["prepared_candidate_sets"] == 1

    def test_prepare_cache_keyed_by_seed_and_spec(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        engine.prepare(scenario.base, seed=0)
        engine.prepare(scenario.base, seed=1)
        engine.prepare(
            scenario.base, spec=CandidateSpec(min_containment=0.5), seed=0
        )
        assert engine.stats()["prepared_candidate_sets"] == 3

    def test_attach_corpus_drops_prepared_cache(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        engine.prepare(scenario.base, seed=0)
        engine.attach_corpus(scenario.corpus)
        assert engine.stats()["prepared_candidate_sets"] == 0

    def test_prepared_cache_lru_bounded(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus, max_prepared_sets=2)
        engine.prepare(scenario.base, seed=0)
        engine.prepare(scenario.base, seed=1)
        engine.prepare(scenario.base, seed=0)  # refresh seed 0's recency
        engine.prepare(scenario.base, seed=2)  # evicts seed 1, not seed 0
        assert engine.stats()["prepared_candidate_sets"] == 2
        _, from_cache, _ = engine._prepare_cached(scenario.base, None, None, 0)
        assert from_cache
        _, from_cache, _ = engine._prepare_cached(scenario.base, None, None, 1)
        assert not from_cache  # seed 1 was the LRU victim

    def test_max_prepared_sets_validated(self, scenario):
        with pytest.raises(ValueError, match="max_prepared_sets"):
            DiscoveryEngine(corpus=scenario.corpus, max_prepared_sets=0)


class TestDiscover:
    def test_metam_run_matches_legacy(self, engine, scenario):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro import prepare_candidates, run_metam

            candidates = prepare_candidates(
                scenario.base, scenario.corpus, seed=0
            )
            legacy = run_metam(
                candidates,
                scenario.base,
                scenario.corpus,
                scenario.task,
                MetamConfig(**CONFIG),
            )
        run = engine.discover(request_for(scenario))
        assert run.completed
        assert run.result.selected == legacy.selected
        assert run.result.utility == legacy.utility
        assert run.result.trace == legacy.trace

    @pytest.mark.parametrize("searcher", ["mw", "overlap", "uniform", "eq", "nc"])
    def test_registered_searchers_run(self, engine, scenario, searcher):
        run = engine.discover(
            request_for(
                scenario,
                searcher=searcher,
                config=None,
                theta=0.6,
                query_budget=20,
            )
        )
        assert run.completed
        assert run.result.searcher in {searcher, "metam"}
        assert run.result.queries <= 20

    def test_unknown_searcher_fails_before_work(self, engine, scenario):
        with pytest.raises(RegistryError, match="unknown searcher"):
            engine.discover(request_for(scenario, searcher="greedy"))
        # The failed request must not count as started; accounting
        # stays balanced across every outcome.
        stats = engine.stats()
        assert stats["runs_started"] == (
            stats["runs_completed"]
            + stats["runs_cancelled"]
            + stats["runs_failed"]
        )

    def test_task_by_registry_name(self, engine):
        housing = housing_scenario(
            seed=0, n_irrelevant=4, n_erroneous=2, n_traps=2
        )
        engine = DiscoveryEngine(corpus=housing.corpus)
        run = engine.discover(
            DiscoveryRequest(
                base=housing.base,
                task="classification",
                task_options={
                    "target_column": "price_label",
                    "exclude_columns": ("zipcode",),
                },
                searcher="uniform",
                theta=0.9,
                query_budget=15,
            )
        )
        assert run.completed
        assert run.request.task_name() == "classification"

    def test_metam_config_conflicts_with_options(self, engine, scenario):
        # A full MetamConfig plus loose knobs must fail loudly, not
        # silently drop the knobs — and the failed run is accounted.
        failed_before = engine.stats()["runs_failed"]
        with pytest.raises(ValueError, match="conflict with an explicit"):
            engine.discover(
                request_for(scenario, options={"epsilon": 0.2})
            )
        assert engine.stats()["runs_failed"] == failed_before + 1

    def test_task_options_require_task_name(self, engine, scenario):
        with pytest.raises(ValueError, match="task_options"):
            engine.discover(
                request_for(scenario, task_options={"target_column": "x"})
            )

    def test_precomputed_candidates_skip_prepare(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        candidates = engine.prepare(scenario.base, seed=0)
        engine.attach_corpus(scenario.corpus)  # drop the cache
        run = engine.discover(request_for(scenario, candidates=candidates))
        assert run.candidate_source == "request"
        assert engine.stats()["prepared_candidate_sets"] == 0

    def test_candidate_source_prepared_then_cache(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        first = engine.discover(request_for(scenario))
        second = engine.discover(request_for(scenario))
        assert first.candidate_source == "prepared"
        assert second.candidate_source == "cache"
        assert first.result.trace == second.result.trace

    def test_accounting(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        runs = [engine.discover(request_for(scenario)) for _ in range(2)]
        stats = engine.stats()
        assert stats["runs_started"] == 2
        assert stats["runs_completed"] == 2
        assert stats["queries_served"] == sum(r.result.queries for r in runs)
        assert [r.run_id for r in runs] == [1, 2]


class TestEventsAndRecords:
    def test_event_stream_shape(self, engine, scenario):
        run = engine.discover(request_for(scenario))
        kinds = [e.kind for e in run.events]
        assert kinds[0] == "run-started"
        assert kinds[1] == "candidates-prepared"
        assert kinds[-1] == "run-completed"
        assert len(run.events_of("query-issued")) == run.result.queries
        accepted = run.events_of("augmentation-accepted")
        assert [e.aug_id for e in accepted] == run.result.selected
        assert run.events_of("round-completed")  # metam emits rounds

    def test_progress_callback_streams_all_events(self, engine, scenario):
        seen = []
        run = engine.discover(request_for(scenario), progress=seen.append)
        assert seen == run.events

    def test_record_is_json_serializable(self, engine, scenario, tmp_path):
        run = engine.discover(request_for(scenario))
        payload = json.loads(json.dumps(run.to_record()))
        assert payload["status"] == "completed"
        assert payload["request"]["searcher"] == "metam"
        assert payload["result"]["utility"] == run.result.utility
        assert payload["events"][0]["kind"] == "run-started"
        path = str(tmp_path / "run.json")
        run.save(path)
        assert json.load(open(path))["run_id"] == run.run_id


class TestCancellation:
    def test_cancel_before_start_yields_cancelled_run(self, engine, scenario):
        token = CancellationToken()
        token.cancel()
        run = engine.discover(request_for(scenario), cancel=token)
        assert run.cancelled
        assert run.result is None
        assert run.events_of("run-completed")[0].status == "cancelled"

    def test_cancel_mid_run_stops_at_next_query(self, scenario):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        token = CancellationToken()

        def progress(event):
            if event.kind == "query-issued" and event.query_index >= 3:
                token.cancel()

        run = engine.discover(
            request_for(scenario), progress=progress, cancel=token
        )
        assert run.cancelled
        assert len(run.events_of("query-issued")) == 3
        assert engine.stats()["runs_cancelled"] == 1
        # The engine stays serviceable after a cancelled run.
        assert engine.discover(request_for(scenario)).completed

    def test_hooks_do_not_leak_into_plain_searchers(self, engine, scenario):
        engine.discover(request_for(scenario))
        candidates = engine.prepare(scenario.base, seed=0)
        searcher = Metam(
            candidates,
            scenario.base,
            scenario.corpus,
            scenario.task,
            MetamConfig(**CONFIG),
        )
        assert searcher.engine.pre_query is None
        assert searcher.engine.on_query is None
        assert searcher.on_round is None
