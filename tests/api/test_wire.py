"""The versioned wire model: golden shapes, envelopes, validation, and
the deprecation shims that delegate to it byte-identically."""

import json

import pytest

from repro.api.errors import (
    ERROR_CODES,
    Cancelled,
    Internal,
    InvalidRequest,
    NotFound,
    Overloaded,
    ReproError,
)
from repro.api.events import QueryIssued, RunCompleted, event_from_record
from repro.api.request import CandidateSpec, DiscoveryRequest
from repro.api.wire import (
    SCHEMA_VERSION,
    dumps,
    envelope,
    error_from_wire,
    error_to_wire,
    event_from_wire,
    event_to_wire,
    jsonable,
    loads,
    open_envelope,
    request_from_wire,
    request_to_wire,
)
from repro.core.config import MetamConfig
from repro.dataframe.table import Table


@pytest.fixture
def base():
    return Table("orders", {"region": ["n", "s"], "total": [1.0, 2.0]})


@pytest.fixture
def corpus(base):
    return {base.name: base}


class TestEnvelope:
    def test_envelope_stamps_version_without_mutating(self):
        payload = {"status": "ok"}
        stamped = envelope(payload)
        assert stamped == {"schema_version": SCHEMA_VERSION, "status": "ok"}
        assert payload == {"status": "ok"}

    def test_open_envelope_accepts_current_and_bare(self):
        assert open_envelope({"schema_version": SCHEMA_VERSION, "a": 1}) == {
            "schema_version": SCHEMA_VERSION,
            "a": 1,
        }
        assert open_envelope({"a": 1}) == {"a": 1}

    def test_open_envelope_rejects_other_versions(self):
        with pytest.raises(InvalidRequest, match="schema_version"):
            open_envelope({"schema_version": 99})
        with pytest.raises(InvalidRequest, match="schema_version"):
            open_envelope({"schema_version": "1"})

    def test_open_envelope_rejects_non_objects(self):
        with pytest.raises(InvalidRequest, match="JSON object"):
            open_envelope([1, 2, 3])


class TestRequestRecordGolden:
    """The record shape is pinned field-for-field: it is what persisted
    run records and the result cache key off."""

    def test_golden_record(self, base):
        request = DiscoveryRequest(
            base=base,
            task="clustering",
            searcher="metam",
            theta=0.8,
            query_budget=50,
            seed=7,
            label="golden",
        )
        assert request_to_wire(request) == {
            "base_table": "orders",
            "base_rows": 2,
            "base_columns": 2,
            "task": "clustering",
            "task_options": {},
            "searcher": "metam",
            "theta": 0.8,
            "query_budget": 50,
            "seed": 7,
            "prepare_seed": None,
            "spec": {
                "min_containment": 0.3,
                "max_hops": 1,
                "max_fanout": 500,
                "include_unions": False,
                "min_union_shared": 0.5,
                "sample_size": 100,
            },
            "config": None,
            "options": {},
            "candidates_supplied": False,
            "label": "golden",
        }

    def test_to_wire_method_matches_function(self, base):
        request = DiscoveryRequest(base=base, task="clustering")
        assert request.to_wire() == request_to_wire(request)

    def test_to_record_shim_warns_and_is_byte_identical(self, base):
        request = DiscoveryRequest(base=base, task="clustering")
        with pytest.warns(DeprecationWarning, match="to_wire"):
            legacy = request.to_record()
        assert dumps(legacy) == dumps(request.to_wire())


class TestRequestFromWire:
    def test_minimal_payload(self, corpus, base):
        request = request_from_wire(
            {"base": "orders", "task": "clustering"}, corpus
        )
        assert request.base is base
        assert request.task == "clustering"
        assert request.searcher == "metam"  # dataclass default

    def test_base_table_alias_and_envelope(self, corpus):
        request = request_from_wire(
            {
                "schema_version": SCHEMA_VERSION,
                "base_table": "orders",
                "task": "clustering",
            },
            corpus,
        )
        assert request.base.name == "orders"

    def test_full_payload_round_trips_live(self, corpus):
        request = request_from_wire(
            {
                "base": "orders",
                "task": "clustering",
                "task_options": {"k": 3},
                "searcher": "uniform",
                "theta": 0.7,
                "query_budget": 25,
                "seed": 3,
                "prepare_seed": 11,
                "spec": {"max_hops": 2, "sample_size": 10},
                "config": {"theta": 0.7, "query_budget": 25, "seed": 3},
                "options": {"tag": "x"},
                "label": "full",
            },
            corpus,
        )
        assert request.spec == CandidateSpec(max_hops=2, sample_size=10)
        assert isinstance(request.config, MetamConfig)
        assert request.config.theta == 0.7
        assert request.task_options == {"k": 3}
        assert request.options == {"tag": "x"}
        assert request.prepare_seed == 11

    @pytest.mark.parametrize(
        ("payload", "match"),
        [
            ({"task": "t"}, "base"),
            ({"base": "", "task": "t"}, "base"),
            ({"base": "nope", "task": "t"}, "unknown base table"),
            ({"base": "orders"}, "task"),
            ({"base": "orders", "task": ""}, "task"),
            ({"base": "orders", "task": "t", "mystery": 1}, "mystery"),
            (
                {"base": "orders", "task": "t", "query_budget": "lots"},
                "query_budget",
            ),
            ({"base": "orders", "task": "t", "options": [1]}, "options"),
            ({"base": "orders", "task": "t", "spec": {"bogus": 1}}, "bogus"),
            (
                {"base": "orders", "task": "t", "spec": "fast"},
                "must be an object",
            ),
            (
                {"base": "orders", "task": "t", "config": {"theta": -4.0}},
                "invalid config",
            ),
        ],
    )
    def test_invalid_payloads(self, corpus, payload, match):
        with pytest.raises(InvalidRequest, match=match):
            request_from_wire(payload, corpus)

    def test_record_form_is_not_a_submission(self, corpus, base):
        """The record form carries descriptive fields (base_rows,
        candidates_supplied) a submission must not smuggle in."""
        record = request_to_wire(DiscoveryRequest(base=base, task="t"))
        with pytest.raises(InvalidRequest, match="unknown request field"):
            request_from_wire(record, corpus)


class TestEventShim:
    def test_event_from_record_warns_and_delegates(self):
        record = {"kind": "run-completed", "status": "completed",
                  "utility": 0.9, "queries": 4, "seconds": 1.5}
        with pytest.warns(DeprecationWarning, match="event_from_wire"):
            legacy = event_from_record(record)
        assert legacy == event_from_wire(record)
        assert legacy == RunCompleted(
            status="completed", utility=0.9, queries=4, seconds=1.5
        )

    def test_event_to_wire_golden(self):
        event = QueryIssued(query_index=2, utility=0.6, best_utility=0.7)
        assert event_to_wire(event) == {
            "kind": "query-issued",
            "query_index": 2,
            "utility": 0.6,
            "best_utility": 0.7,
        }
        assert event.to_record() == event_to_wire(event)


class TestErrorTaxonomy:
    def test_codes_statuses_exit_codes(self):
        expected = {
            InvalidRequest: ("invalid-request", 400, 2),
            NotFound: ("not-found", 404, 1),
            Overloaded: ("overloaded", 429, 75),
            Cancelled: ("cancelled", 499, 130),
            Internal: ("internal", 500, 1),
        }
        for cls, (code, status, exit_code) in expected.items():
            assert cls.code == code
            assert cls.http_status == status
            assert cls.exit_code == exit_code
            assert ERROR_CODES[code] is cls
            assert issubclass(cls, ReproError)

    def test_round_trip_preserves_type_and_details(self):
        for error in (
            InvalidRequest("bad field", details={"field": "theta"}),
            NotFound("no run"),
            Cancelled("gone"),
            Internal("boom"),
        ):
            rebuilt = error_from_wire(error_to_wire(error))
            assert type(rebuilt) is type(error)
            assert rebuilt.message == error.message
            assert rebuilt.details == error.details

    def test_overloaded_round_trips_retry_after(self):
        rebuilt = error_from_wire(
            error_to_wire(Overloaded("busy", retry_after=2.5))
        )
        assert isinstance(rebuilt, Overloaded)
        assert rebuilt.retry_after == 2.5

    def test_retry_after_clamped_non_negative(self):
        assert Overloaded("busy", retry_after=-3.0).retry_after == 0.0

    def test_foreign_exception_wrapped_as_internal(self):
        wired = error_to_wire(RuntimeError("surprise"))
        assert wired["error"]["code"] == "internal"
        assert "surprise" in wired["error"]["message"]
        assert wired["schema_version"] == SCHEMA_VERSION

    def test_unknown_code_comes_back_internal(self):
        rebuilt = error_from_wire(
            {"error": {"code": "from-the-future", "message": "?"}}
        )
        assert isinstance(rebuilt, Internal)


class TestCodec:
    def test_dumps_is_canonical(self):
        raw = dumps({"b": 1, "a": {"z": None, "y": [1, 2]}})
        assert raw == b'{"a":{"y":[1,2],"z":null},"b":1}'
        assert loads(raw) == {"b": 1, "a": {"z": None, "y": [1, 2]}}

    def test_loads_maps_bad_json_to_invalid_request(self):
        with pytest.raises(InvalidRequest, match="not valid JSON"):
            loads(b"{nope")
        with pytest.raises(InvalidRequest, match="not valid JSON"):
            loads(b"\xff\xfe")

    def test_jsonable_coerces_everything(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        class ArrayLike:
            def tolist(self):
                return [1, 2]

        value = {
            "t": (1, 2),
            3: "int key",
            "arr": ArrayLike(),
            "obj": Weird(),
        }
        assert jsonable(value) == {
            "t": [1, 2],
            "3": "int key",
            "arr": [1, 2],
            "obj": "<weird>",
        }
        json.dumps(jsonable(value))  # actually serializable
