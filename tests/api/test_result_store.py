"""The result cache's persistent tier: run records spilled to the store.

Completed cacheable runs spill their JSON records into the catalog
store under content-addressed keys (base table + registry + request
descriptor + whole-corpus content + catalog config + library version).
Identical requests replay across engine instances and processes; a
changed corpus makes old records unreachable *by key construction*, and
reverting the content makes them valid again — invalidation is exactly
as precise as the content stamps.
"""

import json

import pytest

from repro.api import DiscoveryEngine, DiscoveryRequest
from repro.catalog import Catalog, CatalogStore
from repro.core.config import MetamConfig
from repro.data import clustering_scenario
from repro.dataframe.table import Table

CACHE = 8 << 20

TASK_OPTIONS = {
    "score_column": "satiety_score",
    "n_clusters": 3,
    "exclude_columns": ("ingredient_id",),
    "seed": 0,
}


@pytest.fixture(scope="module")
def scenario():
    return clustering_scenario(seed=0)


def request_for(scenario, seed=0):
    return DiscoveryRequest(
        base=scenario.base,
        task="clustering",
        task_options=dict(TASK_OPTIONS),
        searcher="metam",
        seed=seed,
        prepare_seed=0,
        config=MetamConfig(theta=0.6, query_budget=25, epsilon=0.1, seed=seed),
    )


def engine_for(scenario, root, corpus=None, **overrides):
    options = dict(
        corpus=corpus if corpus is not None else scenario.corpus,
        catalog=Catalog.open(root),
        result_cache_bytes=CACHE,
        persist_results=True,
    )
    options.update(overrides)
    return DiscoveryEngine(**options)


def mutate(corpus, name):
    table = corpus[name]
    columns = {c: list(table.column(c)) for c in table.column_names}
    columns[table.column_names[0]] = [
        f"mut-{v}" for v in columns[table.column_names[0]]
    ]
    out = dict(corpus)
    out[name] = Table(name, columns)
    return out


class TestWarmStartAcrossEngines:
    def test_fresh_engine_replays_spilled_record(self, scenario, tmp_path):
        root = str(tmp_path / "cat")
        first_engine = engine_for(scenario, root)
        reference = first_engine.discover(request_for(scenario))
        assert not reference.cached
        store = CatalogStore(root)
        assert len(store.list_results()) == 1

        # A brand-new engine (fresh process in spirit: no in-memory
        # state shared) over the same store and corpus content.
        second_engine = engine_for(scenario, root)
        seen = []
        replay = second_engine.discover(
            request_for(scenario), progress=seen.append
        )
        assert replay.cached
        assert replay.result.selected == reference.result.selected
        assert replay.result.trace == reference.result.trace
        assert [e.kind for e in seen] == [e.kind for e in reference.events]
        stats = second_engine.stats()
        assert stats["result_store_hits"] == 1
        assert stats["result_cache_hits"] == 1
        assert stats["result_store_active"]
        # The disk hit was re-admitted to memory: a third identical
        # request replays without touching the store again.
        assert second_engine.discover(request_for(scenario)).cached
        assert second_engine.stats()["result_store_hits"] == 1

    def test_record_content(self, scenario, tmp_path):
        root = str(tmp_path / "cat")
        engine = engine_for(scenario, root)
        engine.discover(request_for(scenario))
        store = CatalogStore(root)
        (key,) = store.list_results()
        payload = store.read_result(key)
        assert payload["version"] == 1
        assert payload["record"]["status"] == "completed"
        assert payload["stamp"]["tables"] == len(scenario.corpus)
        assert store.verify()["problems"] == []

    def test_different_requests_get_distinct_records(self, scenario, tmp_path):
        root = str(tmp_path / "cat")
        engine = engine_for(scenario, root)
        engine.discover(request_for(scenario, seed=0))
        engine.discover(request_for(scenario, seed=1))
        assert len(CatalogStore(root).list_results()) == 2

    def test_uncacheable_requests_not_spilled(self, scenario, tmp_path):
        root = str(tmp_path / "cat")
        engine = engine_for(scenario, root)
        candidates = engine.prepare(scenario.base, seed=0)
        engine.discover(request_for(scenario, seed=0))
        request = request_for(scenario)
        request.candidates = candidates  # uncacheable by design
        engine.discover(request)
        assert len(CatalogStore(root).list_results()) == 1


class TestInvalidation:
    def test_changed_table_invalidates_affected_runs_exactly(
        self, scenario, tmp_path
    ):
        """End-to-end: a changed table invalidates the cached runs of
        the corpus that contained it — and *only* by content: reverting
        the corpus to the original content makes the original records
        valid again without re-running anything."""
        root = str(tmp_path / "cat")
        engine = engine_for(scenario, root)
        original = engine.discover(request_for(scenario))
        store = CatalogStore(root)
        assert len(store.list_results()) == 1

        mutated_name = sorted(
            name for name in scenario.corpus if name != scenario.base.name
        )[0]
        changed = mutate(scenario.corpus, mutated_name)
        changed_engine = engine_for(scenario, root, corpus=changed)
        after_change = changed_engine.discover(request_for(scenario))
        assert not after_change.cached  # old record unreachable by key
        assert len(store.list_results()) == 2  # new record, old kept

        # Revert: a fresh engine over the *original* content hits the
        # original record — the invalidation was content-exact, not a
        # destructive wipe.
        reverted = engine_for(scenario, root)
        replay = reverted.discover(request_for(scenario))
        assert replay.cached
        assert replay.result.selected == original.result.selected

    def test_unaffected_request_stays_valid_after_rerun(
        self, scenario, tmp_path
    ):
        """Records written under the changed corpus are keyed by *its*
        content: both corpus states keep their own valid records side
        by side."""
        root = str(tmp_path / "cat")
        mutated_name = sorted(
            name for name in scenario.corpus if name != scenario.base.name
        )[0]
        changed = mutate(scenario.corpus, mutated_name)

        engine_a = engine_for(scenario, root)
        engine_a.discover(request_for(scenario))
        engine_b = engine_for(scenario, root, corpus=changed)
        engine_b.discover(request_for(scenario))

        fresh_a = engine_for(scenario, root)
        fresh_b = engine_for(scenario, root, corpus=changed)
        assert fresh_a.discover(request_for(scenario)).cached
        assert fresh_b.discover(request_for(scenario)).cached

    def test_library_version_stamps_key(self, scenario, tmp_path, monkeypatch):
        root = str(tmp_path / "cat")
        engine = engine_for(scenario, root)
        engine.discover(request_for(scenario))
        import repro

        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        fresh = engine_for(scenario, root)
        assert not fresh.discover(request_for(scenario)).cached


class TestDegradation:
    def test_corrupt_record_degrades_to_live_run(self, scenario, tmp_path):
        root = str(tmp_path / "cat")
        engine = engine_for(scenario, root)
        engine.discover(request_for(scenario))
        store = CatalogStore(root)
        (key,) = store.list_results()
        with open(store._result_path(key), "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        fresh = engine_for(scenario, root)
        run = fresh.discover(request_for(scenario))
        assert run.completed and not run.cached  # re-ran, no crash
        # The re-run overwrote the damage; the next engine replays.
        assert engine_for(scenario, root).discover(request_for(scenario)).cached

    def test_malformed_payload_shapes_degrade(self, scenario, tmp_path):
        root = str(tmp_path / "cat")
        engine = engine_for(scenario, root)
        engine.discover(request_for(scenario))
        store = CatalogStore(root)
        (key,) = store.list_results()
        for payload in ("[]", '{"version": 99}', '{"version": 1}'):
            with open(store._result_path(key), "w", encoding="utf-8") as f:
                f.write(payload)
            fresh = engine_for(scenario, root)
            assert fresh.discover(request_for(scenario)).completed

    def test_persist_requires_memory_tier(self, scenario, tmp_path):
        with pytest.raises(ValueError, match="persist_results"):
            DiscoveryEngine(
                corpus=scenario.corpus,
                catalog=Catalog.open(str(tmp_path / "cat")),
                persist_results=True,
            )

    def test_reregistration_deactivates_persistent_tier(
        self, scenario, tmp_path
    ):
        """A factory re-registered after construction has no content
        identity the on-disk keys could carry: the tier must neither
        replay records recorded under the old factory nor spill runs of
        the new one for other processes."""
        root = str(tmp_path / "cat")
        engine = engine_for(scenario, root)
        engine.discover(request_for(scenario))
        assert engine.stats()["result_store_active"]
        original = engine.searchers.get("metam")
        engine.searchers.register("metam", original, overwrite=True)
        assert not engine.stats()["result_store_active"]
        rerun = engine.discover(request_for(scenario))
        assert not rerun.cached  # no persistent replay either
        assert len(CatalogStore(root).list_results()) == 1  # no new spill
        # A fresh engine (construction-time registries) replays again.
        assert engine_for(scenario, root).discover(request_for(scenario)).cached

    def test_persist_inactive_without_catalog(self, scenario):
        engine = DiscoveryEngine(
            corpus=scenario.corpus,
            result_cache_bytes=CACHE,
            persist_results=True,
        )
        run = engine.discover(request_for(scenario))
        assert run.completed
        assert not engine.stats()["result_store_active"]


class TestStoreSection:
    def test_eviction_budget(self, tmp_path):
        store = CatalogStore(str(tmp_path / "cat"))
        for i in range(4):
            store.write_result(f"key{i:02d}", {"version": 1, "i": i})
        total = store.result_bytes()
        assert total > 0
        per_record = total // 4
        evicted, freed = store.evict_results(per_record * 2)
        assert evicted == 2
        assert freed > 0
        assert len(store.list_results()) == 2
        # Oldest evicted first; the newest survive.
        assert store.read_result("key03") is not None

    def test_write_budget_enforced_on_write(self, tmp_path):
        store = CatalogStore(str(tmp_path / "cat"))
        store.write_result("a", {"version": 1, "pad": "x" * 100})
        size = store.result_bytes()
        store.result_budget_bytes = int(size * 1.5)
        store.write_result("b", {"version": 1, "pad": "y" * 100})
        # The just-written record is never evicted; the older one went.
        assert store.list_results() == ["b"]

    def test_read_touches_lru(self, tmp_path, monkeypatch):
        from repro.catalog import store as store_module

        clock = [1000.0]
        monkeypatch.setattr(store_module, "_now", lambda: clock[0])
        store = CatalogStore(str(tmp_path / "cat"))
        store.write_result("old", {"version": 1, "pad": "x" * 50})
        clock[0] += 10
        store.write_result("new", {"version": 1, "pad": "y" * 50})
        clock[0] += 10
        assert store.read_result("old") is not None  # touch refreshes
        clock[0] += 10
        evicted, _freed = store.evict_results(store.result_bytes() // 2)
        assert evicted >= 1
        assert store.read_result("old") is not None  # survived (touched)
        assert store.read_result("new") is None

    def test_stats_count_results(self, tmp_path):
        store = CatalogStore(str(tmp_path / "cat"))
        store.write_result("k", {"version": 1})
        stats = store.stats()
        assert stats["run_records"] == 1
        assert stats["result_bytes"] > 0

    def test_verify_flags_corrupt_record(self, tmp_path):
        store = CatalogStore(str(tmp_path / "cat"))
        store.write_result("k", {"version": 1})
        with open(store._result_path("k"), "w", encoding="utf-8") as handle:
            handle.write("不{")
        problems = store.verify()["problems"]
        assert any("run record" in p for p in problems)

    def test_record_roundtrip_bytes(self, tmp_path):
        store = CatalogStore(str(tmp_path / "cat"))
        payload = {"version": 1, "record": {"nested": [1, 2.5, "x", None]}}
        store.write_result("k", payload)
        assert store.read_result("k") == json.loads(json.dumps(payload))
