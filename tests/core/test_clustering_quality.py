"""Tests for CLUSTER-PARTITION and the quality scorer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QualityScorer, chebyshev, cluster_partition
from repro.core.clustering import singleton_clusters


class TestChebyshev:
    def test_known_value(self):
        assert chebyshev([0.0, 0.0], [0.3, 0.1]) == pytest.approx(0.3)

    def test_symmetric(self):
        a, b = np.array([0.1, 0.9]), np.array([0.4, 0.2])
        assert chebyshev(a, b) == chebyshev(b, a)

    def test_identity(self):
        assert chebyshev([0.5], [0.5]) == 0.0


class TestClusterPartition:
    def test_epsilon_cover_property(self):
        rng = np.random.default_rng(0)
        vectors = rng.uniform(size=(60, 3))
        clusters = cluster_partition(vectors, 0.25, seed=0)
        for i in range(60):
            center = clusters.centers[clusters.cluster_of(i)]
            assert clusters.distance(i, center) <= 0.25

    def test_tight_points_one_cluster(self):
        vectors = np.full((10, 2), 0.5) + np.linspace(0, 0.01, 10)[:, None]
        clusters = cluster_partition(vectors, 0.1, seed=0)
        assert clusters.n_clusters == 1

    def test_spread_points_many_clusters(self):
        vectors = np.eye(4)  # pairwise Chebyshev distance 1
        clusters = cluster_partition(vectors, 0.5, seed=0)
        assert clusters.n_clusters == 4

    def test_smaller_epsilon_more_clusters(self):
        rng = np.random.default_rng(1)
        vectors = rng.uniform(size=(80, 2))
        small = cluster_partition(vectors, 0.05, seed=0).n_clusters
        large = cluster_partition(vectors, 0.3, seed=0).n_clusters
        assert small > large

    def test_members_partition_everything(self):
        rng = np.random.default_rng(2)
        vectors = rng.uniform(size=(40, 3))
        clusters = cluster_partition(vectors, 0.2, seed=0)
        seen = []
        for c in range(clusters.n_clusters):
            seen.extend(clusters.members(c))
        assert sorted(seen) == list(range(40))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cluster_partition(np.empty((0, 2)), 0.1)
        with pytest.raises(ValueError):
            cluster_partition(np.zeros((3, 2)), 0.0)

    def test_dissolve_splits_cluster(self):
        vectors = np.full((5, 2), 0.5)
        clusters = cluster_partition(vectors, 0.1, seed=0)
        assert clusters.n_clusters == 1
        dissolved = clusters.dissolve(0)
        assert dissolved.n_clusters == 5
        for c in range(5):
            assert len(dissolved.members(c)) == 1

    def test_singletons(self):
        clusters = singleton_clusters(np.zeros((7, 2)))
        assert clusters.n_clusters == 7
        assert clusters.cluster_of(3) == 3

    @given(st.integers(5, 40), st.floats(0.05, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_cover_invariant_random(self, n, epsilon):
        rng = np.random.default_rng(n)
        vectors = rng.uniform(size=(n, 2))
        clusters = cluster_partition(vectors, epsilon, seed=0)
        radii = [clusters.radius(c) for c in range(clusters.n_clusters)]
        assert all(r <= epsilon + 1e-9 for r in radii)


class TestQualityScorer:
    @pytest.fixture
    def scorer(self):
        vectors = np.array(
            [
                [0.9, 0.1],
                [0.88, 0.12],  # same cluster as 0
                [0.1, 0.9],
                [0.12, 0.88],  # same cluster as 2
            ]
        )
        clusters = cluster_partition(vectors, 0.1, seed=0)
        return QualityScorer(vectors, clusters, min_fit_samples=3)

    def test_initial_weights_uniform(self, scorer):
        assert np.allclose(scorer.weights, 0.5)

    def test_profile_score_is_weighted_mean(self, scorer):
        assert scorer.profile_score(0) == pytest.approx(0.5)

    def test_utility_score_zero_before_updates(self, scorer):
        assert scorer.utility_score(0) == 0.0

    def test_observed_gain_returned(self, scorer):
        scorer.update(0, 0.3)
        assert scorer.utility_score(0) == 0.3

    def test_propagation_to_clustermate(self, scorer):
        scorer.update(0, 0.3)
        mate = scorer.utility_score(1)
        assert 0.0 < mate <= 0.3  # attenuated by distance

    def test_no_propagation_across_clusters(self, scorer):
        scorer.update(0, 0.3)
        assert scorer.utility_score(2) == 0.0

    def test_disable_propagation(self, scorer):
        scorer.update(0, 0.3)
        cluster = scorer.clusters.cluster_of(0)
        scorer.disable_propagation(cluster)
        assert scorer.utility_score(1) == 0.0
        assert scorer.utility_score(0) == 0.3  # own gain still known

    def test_weights_learn_informative_profile(self):
        rng = np.random.default_rng(0)
        vectors = rng.uniform(size=(30, 2))
        scorer = QualityScorer(
            vectors, singleton_clusters(vectors), min_fit_samples=4
        )
        # Gains depend only on profile 0.
        for i in range(12):
            scorer.update(i, float(vectors[i, 0]))
        assert scorer.weights[0] > 0.8

    def test_best_unqueried_respects_exclusions(self, scorer):
        top = scorer.best_unqueried()
        second = scorer.best_unqueried(excluded_indices={top})
        assert second != top
        none_left = scorer.best_unqueried(
            excluded_indices=set(range(4))
        )
        assert none_left is None

    def test_best_unqueried_excluded_clusters(self, scorer):
        cluster0 = scorer.clusters.cluster_of(0)
        pick = scorer.best_unqueried(excluded_clusters={cluster0})
        assert scorer.clusters.cluster_of(pick) != cluster0

    def test_constant_gains_keep_weights(self, scorer):
        scorer.update(0, 0.1)
        scorer.update(1, 0.1)
        scorer.update(2, 0.1)
        assert np.allclose(scorer.weights, 0.5)

    def test_invalid_matrix(self):
        with pytest.raises(ValueError):
            QualityScorer(np.zeros(3), singleton_clusters(np.zeros((3, 1))))
