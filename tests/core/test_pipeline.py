"""Tests for the end-to-end pipeline module."""

import pytest

from repro import prepare_candidates, run_baseline
from repro.data import clustering_scenario, unions_scenario
from repro.profiles.extensions import extended_registry


@pytest.fixture(scope="module")
def scenario():
    return clustering_scenario(seed=0)


class TestPrepareCandidates:
    def test_default_registry_vectors(self, scenario):
        candidates = prepare_candidates(scenario.base, scenario.corpus, seed=0)
        assert candidates
        assert all(c.profile_vector.shape == (5,) for c in candidates)

    def test_custom_registry(self, scenario):
        registry = extended_registry()
        candidates = prepare_candidates(
            scenario.base, scenario.corpus, registry=registry, seed=0
        )
        assert all(
            c.profile_vector.shape == (len(registry),) for c in candidates
        )

    def test_unions_included_when_requested(self):
        scenario = unions_scenario(seed=0)
        with_unions = prepare_candidates(
            scenario.base, scenario.corpus, include_unions=True,
            min_union_shared=0.9, seed=0,
        )
        union_ids = [c for c in with_unions if c.aug_id.startswith("union:")]
        assert union_ids
        without = prepare_candidates(scenario.base, scenario.corpus, seed=0)
        assert not [c for c in without if c.aug_id.startswith("union:")]

    def test_deterministic(self, scenario):
        a = prepare_candidates(scenario.base, scenario.corpus, seed=3)
        b = prepare_candidates(scenario.base, scenario.corpus, seed=3)
        assert [c.aug_id for c in a] == [c.aug_id for c in b]

    def test_min_containment_filters(self, scenario):
        strict = prepare_candidates(
            scenario.base, scenario.corpus, min_containment=0.99, seed=0
        )
        loose = prepare_candidates(
            scenario.base, scenario.corpus, min_containment=0.1, seed=0
        )
        assert len(strict) <= len(loose)


class TestRunBaselineDispatch:
    def test_join_everything(self, scenario):
        candidates = prepare_candidates(scenario.base, scenario.corpus, seed=0)
        result = run_baseline(
            "join_everything", candidates, scenario.base, scenario.corpus,
            scenario.task,
        )
        assert result.searcher == "join_everything"
        assert result.queries == 2

    def test_iarda_kwargs_passthrough(self):
        from repro.data import housing_scenario

        scenario = housing_scenario(
            seed=0, n_irrelevant=4, n_erroneous=2, n_traps=2
        )
        candidates = prepare_candidates(scenario.base, scenario.corpus, seed=0)
        result = run_baseline(
            "iarda", candidates, scenario.base, scenario.corpus, scenario.task,
            theta=0.9, query_budget=40, target_column="price_label",
        )
        assert result.searcher == "iarda"
