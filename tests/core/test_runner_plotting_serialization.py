"""Tests for the experiment runner, ASCII plotting and serialization."""

import pytest

from repro.core.plotting import render_traces
from repro.core.result import SearchResult
from repro.core.runner import compare_searchers
from repro.core.serialization import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.data import sat_howto_scenario


def make_result(name="metam", utility=0.8, trace=None):
    return SearchResult(
        searcher=name,
        selected=["a", "b"],
        utility=utility,
        base_utility=0.2,
        queries=10,
        trace=trace or [(1, 0.2), (5, 0.5), (10, utility)],
        extras={"n_clusters": 3},
    )


class TestSerialization:
    def test_round_trip(self):
        result = make_result()
        back = result_from_dict(result_to_dict(result))
        assert back.searcher == result.searcher
        assert back.selected == result.selected
        assert back.utility == result.utility
        assert back.trace == result.trace

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            result_from_dict({"searcher": "x"})

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "results.json")
        results = {"metam": make_result(), "mw": make_result("mw", 0.6)}
        save_results(results, path)
        back = load_results(path)
        assert set(back) == {"metam", "mw"}
        assert back["mw"].utility == 0.6

    def test_numpy_extras_jsonable(self, tmp_path):
        import numpy as np

        result = make_result()
        result.extras["weights"] = np.array([0.5, 0.5])
        path = str(tmp_path / "r.json")
        save_results({"m": result}, path)
        assert load_results(path)["m"].extras["weights"] == [0.5, 0.5]


class TestPlotting:
    def test_renders_all_searchers(self):
        results = {"metam": make_result(), "mw": make_result("mw", 0.5)}
        chart = render_traces(results, width=40, height=10)
        assert "*=metam" in chart
        assert "o=mw" in chart
        assert chart.count("\n") >= 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_traces({})

    def test_higher_utility_higher_row(self):
        high = make_result("high", 0.9, trace=[(1, 0.9)])
        low = make_result("low", 0.3, trace=[(1, 0.3)])
        chart = render_traces({"high": high, "low": low}, width=30, height=12)
        lines = chart.splitlines()
        first_star = next(i for i, row in enumerate(lines) if "*" in row)
        first_o = next(
            i for i, row in enumerate(lines) if "o" in row and "o=" not in row
        )
        assert first_star < first_o  # higher utility drawn nearer the top


class TestRunner:
    @pytest.fixture(scope="class")
    def report(self):
        scenario = sat_howto_scenario(seed=0, n_irrelevant=4, n_erroneous=2, n_traps=2)
        return compare_searchers(
            scenario,
            budget=80,
            seeds=(0, 1),
            baselines=("uniform",),
            query_points=(10, 40, 80),
        )

    def test_curves_present(self, report):
        assert set(report.curves) == {"metam", "uniform"}
        assert len(report.curves["metam"]) == 3

    def test_curves_nondecreasing(self, report):
        for values in report.curves.values():
            assert all(b >= a - 1e-9 for a, b in zip(values, values[1:], strict=False))

    def test_winner_at(self, report):
        assert report.winner_at(80) in {"metam", "uniform"}
        with pytest.raises(ValueError):
            report.winner_at(999)

    def test_table_format(self, report):
        table = report.table()
        assert "metam" in table and "uniform" in table

    def test_runs_recorded_per_seed(self, report):
        assert len(report.runs) == 2

    def test_unknown_baseline(self):
        scenario = sat_howto_scenario(seed=0, n_irrelevant=2, n_erroneous=1, n_traps=1)
        with pytest.raises(ValueError):
            compare_searchers(scenario, baselines=("greedy",))

    def test_metam_rejected_as_baseline(self):
        # 'metam' always runs; as a baseline it would re-run default-
        # configured and overwrite the configured result under its key.
        scenario = sat_howto_scenario(seed=0, n_irrelevant=2, n_erroneous=1, n_traps=1)
        with pytest.raises(ValueError, match="don't list it as a baseline"):
            compare_searchers(scenario, baselines=("metam",))

    def test_iarda_needs_target(self):
        scenario = sat_howto_scenario(seed=0, n_irrelevant=2, n_erroneous=1, n_traps=1)
        with pytest.raises(ValueError, match="iarda_target"):
            compare_searchers(scenario, baselines=("iarda",))


class TestParallelAndCancellation:
    @pytest.fixture(scope="class")
    def scenario(self):
        return sat_howto_scenario(
            seed=0, n_irrelevant=4, n_erroneous=2, n_traps=2
        )

    def test_parallel_matches_sequential(self, scenario):
        kwargs = dict(
            budget=60,
            seeds=(0,),
            baselines=("uniform",),
            query_points=(10, 30, 60),
        )
        sequential = compare_searchers(scenario, **kwargs)
        parallel = compare_searchers(scenario, parallel=True, **kwargs)
        assert parallel.curves == sequential.curves
        assert parallel.final == sequential.final
        for name in sequential.runs[0]:
            assert (
                parallel.runs[0][name].trace == sequential.runs[0][name].trace
            )

    @pytest.mark.parametrize("parallel", [False, True])
    def test_cancelled_comparison_raises(self, scenario, parallel):
        from repro.api import CancellationToken, RunCancelled

        token = CancellationToken()
        token.cancel()
        with pytest.raises(RunCancelled):
            compare_searchers(
                scenario,
                budget=60,
                seeds=(0,),
                baselines=("uniform",),
                query_points=(10, 30, 60),
                parallel=parallel,
                cancel=token,
            )
