"""Integration tests: METAM end-to-end on synthetic scenarios."""

import pytest

from repro import MetamConfig, prepare_candidates, run_metam
from repro.core.metam import Metam
from repro.data import clustering_scenario, housing_scenario, sat_howto_scenario
from repro.tasks.base import canonical_column


@pytest.fixture(scope="module")
def housing():
    scenario = housing_scenario(seed=0, n_irrelevant=8, n_erroneous=4, n_traps=3)
    candidates = prepare_candidates(scenario.base, scenario.corpus, seed=0)
    return scenario, candidates


@pytest.fixture(scope="module")
def howto():
    scenario = sat_howto_scenario(seed=0, n_irrelevant=6, n_erroneous=3)
    candidates = prepare_candidates(scenario.base, scenario.corpus, seed=0)
    return scenario, candidates


class TestMetamEndToEnd:
    def test_improves_utility(self, housing):
        scenario, candidates = housing
        result = run_metam(
            candidates,
            scenario.base,
            scenario.corpus,
            scenario.task,
            MetamConfig(theta=0.75, query_budget=120, epsilon=0.1, seed=0),
        )
        assert result.utility > result.base_utility + 0.1
        assert result.queries <= 120

    def test_reaches_theta_on_causal(self, howto):
        scenario, candidates = howto
        result = run_metam(
            candidates,
            scenario.base,
            scenario.corpus,
            scenario.task,
            MetamConfig(theta=1.0, query_budget=200, epsilon=0.1, seed=0),
        )
        assert result.utility == 1.0
        selected = {canonical_column(s) for s in result.selected}
        assert selected <= scenario.truth_columns | {"scholarship_offer"}

    def test_solution_is_minimal_on_causal(self, howto):
        scenario, candidates = howto
        result = run_metam(
            candidates,
            scenario.base,
            scenario.corpus,
            scenario.task,
            MetamConfig(theta=1.0, query_budget=200, epsilon=0.1, seed=0),
        )
        # All three causes are needed for utility 1.0; minimality keeps 3.
        assert len(result.selected) == 3

    def test_trace_monotone_nondecreasing(self, housing):
        scenario, candidates = housing
        result = run_metam(
            candidates,
            scenario.base,
            scenario.corpus,
            scenario.task,
            MetamConfig(theta=1.0, query_budget=60, epsilon=0.1, seed=0),
        )
        values = [v for _, v in result.trace]
        assert all(b >= a for a, b in zip(values, values[1:], strict=False))

    def test_budget_respected(self, housing):
        scenario, candidates = housing
        result = run_metam(
            candidates,
            scenario.base,
            scenario.corpus,
            scenario.task,
            MetamConfig(theta=1.0, query_budget=15, epsilon=0.1, seed=0),
        )
        assert result.queries <= 15

    def test_deterministic_given_seed(self, howto):
        scenario, candidates = howto
        config = MetamConfig(theta=1.0, query_budget=100, epsilon=0.1, seed=3)
        a = run_metam(candidates, scenario.base, scenario.corpus, scenario.task, config)
        b = run_metam(candidates, scenario.base, scenario.corpus, scenario.task, config)
        assert a.selected == b.selected
        assert a.queries == b.queries

    def test_empty_candidates_rejected(self, housing):
        scenario, _ = housing
        with pytest.raises(ValueError):
            Metam([], scenario.base, scenario.corpus, scenario.task)

    def test_unprofiled_candidates_rejected(self, housing):
        scenario, candidates = housing
        stripped = [type(c)(aug=c.aug, values=c.values, overlap=c.overlap) for c in candidates]
        with pytest.raises(ValueError, match="profile"):
            Metam(stripped, scenario.base, scenario.corpus, scenario.task)

    def test_extras_reported(self, housing):
        scenario, candidates = housing
        result = run_metam(
            candidates,
            scenario.base,
            scenario.corpus,
            scenario.task,
            MetamConfig(theta=0.7, query_budget=60, epsilon=0.1, seed=0),
        )
        assert result.extras["n_clusters"] >= 1
        assert len(result.extras["profile_weights"]) == 5

    def test_active_homogeneity_mode_runs(self, howto):
        scenario, candidates = howto
        result = run_metam(
            candidates,
            scenario.base,
            scenario.corpus,
            scenario.task,
            MetamConfig(
                theta=1.0,
                query_budget=250,
                epsilon=0.1,
                homogeneity="active",
                seed=0,
            ),
        )
        assert result.utility >= 0.6

    def test_variants_run(self, howto):
        from repro.baselines import metam_variant

        scenario, candidates = howto
        for name in ("eq", "nc", "nceq"):
            searcher = metam_variant(
                name,
                candidates,
                scenario.base,
                scenario.corpus,
                scenario.task,
                MetamConfig(theta=1.0, query_budget=150, epsilon=0.1, seed=0),
            )
            result = searcher.run()
            assert result.utility >= result.base_utility

    def test_unknown_variant(self, howto):
        from repro.baselines import metam_variant

        scenario, candidates = howto
        with pytest.raises(ValueError):
            metam_variant("fast", candidates, scenario.base, scenario.corpus, scenario.task)


class TestMetamClusteringScenario:
    def test_eight_candidate_scenario_fast(self):
        scenario = clustering_scenario(seed=0)
        candidates = prepare_candidates(scenario.base, scenario.corpus, seed=0)
        result = run_metam(
            candidates,
            scenario.base,
            scenario.corpus,
            scenario.task,
            MetamConfig(theta=0.6, query_budget=30, epsilon=0.1, seed=0),
        )
        assert result.utility >= 0.6
        selected = {canonical_column(s) for s in result.selected}
        assert "oni_score" in selected
