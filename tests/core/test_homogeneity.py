"""Direct tests for the cluster-homogeneity validation (P2 fallback)."""

import numpy as np

from repro.core.clustering import cluster_partition
from repro.core.homogeneity import _band_holds, check_cluster_homogeneity
from repro.core.querying import QueryEngine
from repro.dataframe import Table
from repro.discovery import Candidate
from repro.tasks.base import Task


class TestBandHolds:
    def test_similar_gains_homogeneous(self):
        assert _band_holds([0.20, 0.22, 0.21], epsilon=0.05)

    def test_wildly_different_gains_not_homogeneous(self):
        assert not _band_holds([0.0, 0.0, 0.9], epsilon=0.05)

    def test_single_gain_trivially_homogeneous(self):
        assert _band_holds([0.5], epsilon=0.05)

    def test_zero_gains_homogeneous(self):
        assert _band_holds([0.0, 0.0, 0.0], epsilon=0.05)

    def test_majority_rule(self):
        # Two of three inside the band -> homogeneous.
        assert _band_holds([0.20, 0.21, 0.25], epsilon=0.05)


class _IdUtilityTask(Task):
    """Utility = fixed value per single augmentation (for active mode)."""

    name = "id_utility"

    def __init__(self, per_aug, base=0.1):
        self.per_aug = per_aug
        self.base = base

    def utility(self, table):
        augs = [c for c in table.column_names if c.startswith("aug")]
        if not augs:
            return self.base
        return max(self.per_aug.get(a, self.base) for a in augs)


class _ColAug:
    def __init__(self, aug_id):
        self.aug_id = aug_id

    def apply(self, table, base, corpus):
        if self.aug_id in table:
            return table
        return table.with_column(self.aug_id, [1.0] * table.num_rows)


class TestActiveMode:
    def _setup(self, per_aug):
        base = Table("b", {"x": [1, 2]})
        ids = sorted(per_aug)
        candidates = [
            Candidate(aug=_ColAug(a), values=[1.0, 1.0], overlap=1.0) for a in ids
        ]
        engine = QueryEngine(_IdUtilityTask(per_aug), base, {}, candidates)
        vectors = np.full((len(ids), 2), 0.5)
        clusters = cluster_partition(vectors, 0.1, seed=0)
        return engine, clusters, ids

    def test_homogeneous_cluster_passes(self):
        per_aug = {f"aug{i}": 0.5 for i in range(4)}
        engine, clusters, ids = self._setup(per_aug)
        assert check_cluster_homogeneity(
            clusters, 0, engine, ids, base_utility=0.1, epsilon=0.05,
            mode="active", seed=0,
        )

    def test_mixed_cluster_fails(self):
        per_aug = {"aug0": 0.9, "aug1": 0.1, "aug2": 0.1, "aug3": 0.9}
        engine, clusters, ids = self._setup(per_aug)
        # Not guaranteed to fail for every sample, but with 4 members and
        # 2+ samples the gains {0.0, 0.8} violate the band whenever both
        # kinds are drawn; check over a few seeds at least one detects it.
        detections = [
            not check_cluster_homogeneity(
                clusters, 0, engine, ids, base_utility=0.1, epsilon=0.05,
                mode="active", seed=s,
            )
            for s in range(5)
        ]
        assert any(detections)

    def test_queries_are_spent(self):
        per_aug = {f"aug{i}": 0.5 for i in range(4)}
        engine, clusters, ids = self._setup(per_aug)
        before = engine.queries
        check_cluster_homogeneity(
            clusters, 0, engine, ids, base_utility=0.1, epsilon=0.05,
            mode="active", seed=0,
        )
        assert engine.queries > before

    def test_lazy_mode_uses_observed_gains_only(self):
        per_aug = {f"aug{i}": 0.5 for i in range(4)}
        engine, clusters, ids = self._setup(per_aug)
        before = engine.queries
        result = check_cluster_homogeneity(
            clusters, 0, engine, ids, base_utility=0.1, epsilon=0.05,
            mode="lazy", observed_gains={0: 0.4, 1: 0.42},
        )
        assert result
        assert engine.queries == before  # no queries in lazy mode

    def test_lazy_mode_insufficient_evidence_passes(self):
        per_aug = {f"aug{i}": 0.5 for i in range(4)}
        engine, clusters, ids = self._setup(per_aug)
        assert check_cluster_homogeneity(
            clusters, 0, engine, ids, base_utility=0.1, epsilon=0.05,
            mode="lazy", observed_gains={0: 0.4},
        )

    def test_singleton_cluster_trivially_homogeneous(self):
        per_aug = {"aug0": 0.5}
        engine, clusters, ids = self._setup(per_aug)
        assert check_cluster_homogeneity(
            clusters, 0, engine, ids, base_utility=0.1, epsilon=0.05,
            mode="active", seed=0,
        )
