"""Tests for the query engine, monotone state, minimality and bandit."""

import numpy as np
import pytest

from repro.core import (
    MonotoneState,
    QueryBudgetExhausted,
    QueryEngine,
    ThompsonGroupSelector,
    identify_minimal,
)
from repro.core.clustering import cluster_partition
from repro.dataframe import Table
from repro.discovery import Candidate
from repro.tasks.base import Task


class FakeAug:
    """Augmentation stub: appends a constant column."""

    def __init__(self, aug_id, value=1.0):
        self.aug_id = aug_id
        self.value = value

    def apply(self, table, base, corpus):
        if self.aug_id in table:
            return table
        return table.with_column(self.aug_id, [self.value] * table.num_rows)


class SetUtilityTask(Task):
    """Task whose utility is a lookup over the set of augmented columns."""

    name = "fake"

    def __init__(self, utilities, default=0.1):
        self.utilities = {frozenset(k): v for k, v in utilities.items()}
        self.default = default

    def utility(self, table):
        augs = frozenset(c for c in table.column_names if c.startswith("aug"))
        return self.utilities.get(augs, self.default)


def make_engine(utilities, n_augs=3, budget=None, default=0.1):
    base = Table("base", {"x": [1, 2, 3]})
    candidates = [
        Candidate(aug=FakeAug(f"aug{i}"), values=[1.0] * 3, overlap=1.0)
        for i in range(n_augs)
    ]
    task = SetUtilityTask(utilities, default=default)
    return QueryEngine(task, base, {}, candidates, budget=budget)


class TestQueryEngine:
    def test_base_utility(self):
        engine = make_engine({(): 0.4})
        assert engine.base_utility() == 0.4

    def test_caching_no_double_count(self):
        engine = make_engine({(): 0.4})
        engine.utility({"aug0"})
        engine.utility({"aug0"})
        assert engine.queries == 1

    def test_budget_enforced(self):
        engine = make_engine({}, budget=2)
        engine.utility({"aug0"})
        engine.utility({"aug1"})
        with pytest.raises(QueryBudgetExhausted):
            engine.utility({"aug2"})

    def test_remaining_budget(self):
        engine = make_engine({}, budget=3)
        engine.utility({"aug0"})
        assert engine.remaining_budget() == 2
        assert make_engine({}).remaining_budget() is None

    def test_trace_best_so_far(self):
        engine = make_engine({("aug0",): 0.9, ("aug1",): 0.3})
        engine.utility({"aug1"})
        engine.utility({"aug0"})
        assert engine.trace == [(1, 0.3), (2, 0.9)]
        assert engine.best_utility == 0.9

    def test_utility_at(self):
        engine = make_engine({("aug0",): 0.9, ("aug1",): 0.3})
        engine.utility({"aug1"})
        engine.utility({"aug0"})
        assert engine.utility_at(1) == 0.3
        assert engine.utility_at(2) == 0.9

    def test_unknown_candidate(self):
        engine = make_engine({})
        with pytest.raises(KeyError):
            engine.utility({"ghost"})

    def test_order_insensitive_cache(self):
        engine = make_engine({("aug0", "aug1"): 0.7})
        a = engine.utility({"aug0", "aug1"})
        b = engine.utility({"aug1", "aug0"})
        assert a == b == 0.7
        assert engine.queries == 1

    def test_cached_utility_returns_memoized(self):
        engine = make_engine({("aug0",): 0.9})
        assert engine.cached_utility({"aug0"}) is None
        engine.utility({"aug0"})
        assert engine.cached_utility({"aug0"}) == 0.9
        assert engine.cached_utility(["aug0"]) == 0.9  # any iterable

    def test_cached_utility_spends_no_query(self):
        engine = make_engine({}, budget=1)
        engine.utility({"aug0"})
        engine.cached_utility({"aug1"})
        engine.cached_utility({"aug0"})
        assert engine.queries == 1  # lookups never queried the task


class TestMonotoneState:
    def test_accepts_improving(self):
        engine = make_engine({(): 0.2, ("aug0",): 0.5})
        state = MonotoneState(engine)
        accepted, value = state.try_add("aug0")
        assert accepted and value == 0.5
        assert state.selected == ["aug0"]

    def test_rejects_worsening(self):
        engine = make_engine({(): 0.5, ("aug0",): 0.3})
        state = MonotoneState(engine)
        accepted, value = state.try_add("aug0")
        assert not accepted
        assert state.utility == 0.5
        assert state.rejections == 1

    def test_rejects_tie(self):
        engine = make_engine({(): 0.5, ("aug0",): 0.5})
        state = MonotoneState(engine)
        accepted, _ = state.try_add("aug0")
        assert not accepted

    def test_duplicate_add_noop(self):
        engine = make_engine({(): 0.2, ("aug0",): 0.5})
        state = MonotoneState(engine)
        state.try_add("aug0")
        accepted, _ = state.try_add("aug0")
        assert not accepted
        assert state.selected == ["aug0"]

    def test_accept_validates(self):
        engine = make_engine({(): 0.5})
        state = MonotoneState(engine)
        with pytest.raises(ValueError):
            state.accept("aug0", 0.4)


class TestIdentifyMinimal:
    def test_redundant_augmentation_dropped(self):
        utilities = {
            (): 0.1,
            ("aug0",): 0.9,
            ("aug1",): 0.2,
            ("aug0", "aug1"): 0.9,
        }
        engine = make_engine(utilities)
        kept = identify_minimal(["aug0", "aug1"], engine, theta=0.9)
        assert kept == ["aug0"]

    def test_all_needed_kept(self):
        utilities = {
            (): 0.1,
            ("aug0",): 0.4,
            ("aug1",): 0.4,
            ("aug0", "aug1"): 0.9,
        }
        engine = make_engine(utilities)
        kept = identify_minimal(["aug0", "aug1"], engine, theta=0.9)
        assert sorted(kept) == ["aug0", "aug1"]

    def test_single_element_untouched(self):
        engine = make_engine({})
        assert identify_minimal(["aug0"], engine, theta=0.5) == ["aug0"]

    def test_budget_exhaustion_returns_known_good(self):
        utilities = {("aug0",): 0.9, ("aug1",): 0.9, ("aug0", "aug1"): 0.9}
        engine = make_engine(utilities, budget=1)
        kept = identify_minimal(["aug0", "aug1"], engine, theta=0.9)
        assert len(kept) >= 1


class TestThompson:
    @pytest.fixture
    def clusters(self):
        vectors = np.array([[0.0, 0.0], [0.01, 0.0], [1.0, 1.0], [0.99, 1.0]])
        return cluster_partition(vectors, 0.1, seed=0)

    def test_group_size_respected(self, clusters):
        bandit = ThompsonGroupSelector(clusters, seed=0)
        group = bandit.sample_group(2, available=range(4))
        assert len(group) == 2

    def test_one_member_per_cluster(self, clusters):
        bandit = ThompsonGroupSelector(clusters, seed=0)
        group = bandit.sample_group(2, available=range(4))
        assert len({clusters.cluster_of(i) for i in group}) == 2

    def test_empty_available(self, clusters):
        bandit = ThompsonGroupSelector(clusters, seed=0)
        assert bandit.sample_group(2, available=[]) == []

    def test_rewards_shift_posterior(self, clusters):
        bandit = ThompsonGroupSelector(clusters, seed=0)
        cid = clusters.cluster_of(0)
        before = bandit.posterior_mean(cid)
        bandit.reward([0], success=True)
        assert bandit.posterior_mean(cid) > before
        bandit.reward([0], success=False)
        bandit.reward([0], success=False)
        assert bandit.posterior_mean(cid) < before + 0.2

    def test_successful_cluster_sampled_more(self, clusters):
        bandit = ThompsonGroupSelector(clusters, seed=0)
        for _ in range(20):
            bandit.reward([0], success=True)   # cluster of 0/1
            bandit.reward([2], success=False)  # cluster of 2/3
        picks = [bandit.sample_group(1, available=range(4))[0] for _ in range(30)]
        from_good = sum(1 for p in picks if clusters.cluster_of(p) == clusters.cluster_of(0))
        assert from_good > 20

    def test_member_score_picks_best(self, clusters):
        bandit = ThompsonGroupSelector(clusters, seed=0)
        score = {0: 0.1, 1: 0.9, 2: 0.2, 3: 0.8}.get
        group = bandit.sample_group(2, available=range(4), member_score=score)
        assert set(group) <= {1, 3}

    def test_uniform_mode_ignores_rewards(self, clusters):
        bandit = ThompsonGroupSelector(clusters, seed=0, uniform=True)
        for _ in range(50):
            bandit.reward([0], success=True)
        draws = bandit.posterior_samples()
        assert draws.shape == (clusters.n_clusters,)
