"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import SCENARIOS, build_parser, main


class TestParser:
    def test_list_scenarios_parses(self):
        args = build_parser().parse_args(["list-scenarios"])
        assert args.command == "list-scenarios"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "clustering"])
        assert args.budget == 150
        assert args.theta == 1.0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "penguins"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestErrorPaths:
    def test_unknown_scenario_exit_code_and_stderr(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "penguins"])
        assert excinfo.value.code == 2  # argparse usage error
        err = capsys.readouterr().err
        assert "invalid choice: 'penguins'" in err

    def test_unknown_baseline_exit_code_and_stderr(self, capsys):
        code = main(
            ["run", "clustering", "--budget", "20", "--theta", "0.6",
             "--baselines", "greedy"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "greedy" in captured.err
        assert "error" not in captured.out

    def test_missing_catalog_dir_exit_code_and_stderr(self, tmp_path, capsys):
        code = main(["corpus-stats", "--catalog", str(tmp_path / "absent")])
        assert code == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "no catalog manifest" in captured.err
        assert captured.out == ""

    def test_negative_batch_tables_rejected(self, capsys):
        # A negative value must not silently select the unbounded
        # hold-everything pass (only 0 means that).
        code = main(["corpus-stats", "--tables", "5", "--batch-tables", "-5"])
        assert code == 2
        assert "--batch-tables must be >= 0" in capsys.readouterr().err

    def test_batch_tables_without_catalog_warns(self, capsys):
        # The in-memory path has no streaming pass — the flag must not
        # silently pretend memory is bounded.
        code = main(["corpus-stats", "--tables", "5", "--batch-tables", "64"])
        assert code == 0
        captured = capsys.readouterr()
        assert "only applies with --catalog" in captured.err
        assert "#Tables" in captured.out


class TestCommands:
    def test_list_scenarios_output(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_run_clustering_fast(self, capsys, tmp_path):
        save = str(tmp_path / "out.json")
        code = main(
            [
                "run",
                "clustering",
                "--budget",
                "25",
                "--theta",
                "0.6",
                "--baselines",
                "uniform",
                "--save",
                save,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metam" in out and "uniform" in out
        payload = json.loads(open(save).read())
        assert "metam" in payload

    def test_run_no_baselines_no_chart(self, capsys):
        code = main(
            ["run", "clustering", "--budget", "20", "--theta", "0.6",
             "--baselines", "none", "--no-chart"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metam" in out
        assert "queries" in out

    def test_run_goes_through_engine(self, capsys, monkeypatch):
        # 'repro run' must serve its searchers through DiscoveryEngine,
        # not the legacy free functions.
        from repro.api import DiscoveryEngine

        calls = []
        original = DiscoveryEngine.discover

        def spy(self, request, progress=None, cancel=None):
            calls.append(request.searcher)
            return original(self, request, progress=progress, cancel=cancel)

        monkeypatch.setattr(DiscoveryEngine, "discover", spy)
        code = main(
            ["run", "clustering", "--budget", "20", "--theta", "0.6",
             "--baselines", "uniform", "--no-chart"]
        )
        assert code == 0
        assert calls == ["metam", "uniform"]
        out = capsys.readouterr().out
        assert "metam" in out and "uniform" in out

    def test_corpus_stats(self, capsys):
        code = main(["corpus-stats", "--tables", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "#Tables" in out
        assert "12" in out


class TestAsyncAndCancellation:
    RUN_ARGS = [
        "run", "clustering", "--budget", "20", "--theta", "0.6",
        "--baselines", "uniform", "--no-chart",
    ]

    def test_async_flags_parse(self):
        args = build_parser().parse_args(self.RUN_ARGS + ["--async", "--no-result-cache"])
        assert args.use_async
        assert args.no_result_cache
        defaults = build_parser().parse_args(self.RUN_ARGS)
        assert not defaults.use_async
        assert not defaults.no_result_cache

    def test_run_async_matches_sync_output(self, capsys):
        assert main(self.RUN_ARGS) == 0
        sync_out = capsys.readouterr().out
        assert main(self.RUN_ARGS + ["--async"]) == 0
        async_out = capsys.readouterr().out
        # Concurrent serving is byte-identical: the printed comparison
        # (curves, summaries) must match the sequential run exactly.
        assert async_out == sync_out

    @pytest.mark.parametrize("extra", [[], ["--async"]])
    def test_cancelled_run_exits_nonzero(self, capsys, monkeypatch, extra):
        # A run cancelled mid-flight must be distinguishable from
        # success (previously both exited 0).
        from repro.api import RunCancelled

        def cancelled(*args, **kwargs):
            raise RunCancelled("discovery run cancelled")

        monkeypatch.setattr("repro.cli.compare_searchers", cancelled)
        code = main(self.RUN_ARGS + extra)
        assert code == 130
        captured = capsys.readouterr()
        assert "cancelled" in captured.err
        assert "error" not in captured.out

    def test_sigint_cancels_cooperatively(self):
        import os
        import signal

        from repro.api import CancellationToken
        from repro.cli import _cancel_on_sigint

        token = CancellationToken()
        restore = _cancel_on_sigint(token)
        try:
            os.kill(os.getpid(), signal.SIGINT)
            # The handler fires the token instead of raising
            # KeyboardInterrupt into the middle of a search.
            assert token.cancelled
            # A second Ctrl-C escalates: cancellation is cooperative
            # and a long preparation won't observe it, so the user must
            # always have a hard way out.
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
                token.cancelled  # bytecode boundary so the signal lands
        finally:
            restore()


class TestCatalogCommands:
    def test_build_update_stats_cycle(self, capsys, tmp_path):
        path = str(tmp_path / "cat")
        assert main(["catalog", "build", path, "--tables", "8"]) == 0
        out = capsys.readouterr().out
        assert "+8 added" in out

        # Same corpus again: everything unchanged, nothing signed.
        assert main(["catalog", "update", path, "--tables", "8"]) == 0
        out = capsys.readouterr().out
        assert "=8 unchanged" in out
        assert "0 columns signed" in out

        # Larger corpus: only the new tables are signed.
        assert main(["catalog", "update", path, "--tables", "10", "--gc"]) == 0
        out = capsys.readouterr().out
        assert "+2 added" in out and "=8 unchanged" in out

        assert main(["catalog", "stats", path]) == 0
        out = capsys.readouterr().out
        assert "tables          10" in out

    def test_build_refuses_api_built_catalog(self, capsys, tmp_path):
        from repro.catalog import Catalog, CatalogStore
        from repro.dataframe.table import Table

        path = str(tmp_path / "api-cat")
        catalog = Catalog(CatalogStore(path), seed=0)
        catalog.refresh({"real": Table("real", {"key": ["a", "b"]})})
        catalog.save()
        # Built outside the CLI (no recorded corpus params): build must
        # refuse instead of replacing the real tables with synthetic ones.
        assert main(["catalog", "build", path]) == 1
        assert "outside the CLI" in capsys.readouterr().err
        manifest = CatalogStore(path).read_manifest()
        assert "real" in manifest["tables"]

    def test_rebuild_with_different_corpus_refused(self, capsys, tmp_path):
        path = str(tmp_path / "cat")
        assert main(["catalog", "build", path, "--tables", "6", "--seed", "7"]) == 0
        capsys.readouterr()
        # Same corpus definition: idempotent rebuild is allowed.
        assert main(["catalog", "build", path, "--tables", "6", "--seed", "7"]) == 0
        capsys.readouterr()
        # Different corpus definition: refuse instead of replacing tables.
        assert main(["catalog", "build", path, "--tables", "6", "--seed", "9"]) == 1
        assert "use 'catalog update'" in capsys.readouterr().err

    def test_update_refuses_without_recorded_corpus_params(self, capsys, tmp_path):
        import os

        path = str(tmp_path / "cat")
        assert main(["catalog", "build", path, "--tables", "6", "--seed", "7"]) == 0
        os.remove(os.path.join(path, "cli_corpus.json"))
        capsys.readouterr()
        # No recorded params and no flags: refuse rather than regenerate a
        # different corpus and churn the catalog.
        assert main(["catalog", "update", path]) == 1
        assert "no recorded corpus parameters" in capsys.readouterr().err
        # Explicit flags still work.
        assert main(
            ["catalog", "update", path, "--tables", "6", "--seed", "7",
             "--style", "open_data"]
        ) == 0
        assert "=6 unchanged" in capsys.readouterr().out

    def test_update_defaults_to_build_corpus_params(self, capsys, tmp_path):
        path = str(tmp_path / "cat")
        assert main(["catalog", "build", path, "--tables", "6", "--seed", "7"]) == 0
        capsys.readouterr()
        # Bare update must reuse tables=6/seed=7, not regenerate with the
        # build defaults and re-sign everything.
        assert main(["catalog", "update", path]) == 0
        out = capsys.readouterr().out
        assert "=6 unchanged" in out
        assert "0 columns signed" in out

    def test_stats_missing_catalog(self, capsys, tmp_path):
        assert main(["catalog", "stats", str(tmp_path / "none")]) == 1

    def test_invalid_index_params_report_cleanly(self, capsys, tmp_path):
        code = main(
            ["catalog", "build", str(tmp_path / "c"), "--num-perm", "60"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_manifest_reports_cleanly(self, capsys, tmp_path):
        path = tmp_path / "cat"
        path.mkdir()
        (path / "manifest.json").write_text("garbage")
        for command in ("stats", "update", "build"):
            assert main(["catalog", command, str(path)]) == 1
            assert "error: corrupt catalog manifest" in capsys.readouterr().err

    def test_catalog_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["catalog"])


class TestCatalogWatch:
    def test_watch_cycles_and_stops(self, capsys, tmp_path):
        path = str(tmp_path / "cat")
        assert main(["catalog", "build", path, "--tables", "6"]) == 0
        capsys.readouterr()
        code = main(
            ["catalog", "watch", path, "--interval", "0.01", "--cycles", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "watching catalog" in out
        assert "cycle 1: epoch 1" in out
        assert "cycle 2: epoch 1" in out  # unchanged corpus, same epoch

    def test_watch_requires_catalog(self, capsys, tmp_path):
        assert main(["catalog", "watch", str(tmp_path / "none")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_watch_requires_recorded_corpus_params(self, capsys, tmp_path):
        from repro.catalog import Catalog, CatalogStore
        from repro.dataframe.table import Table

        path = str(tmp_path / "api-cat")
        catalog = Catalog(CatalogStore(path), seed=0)
        catalog.refresh({"t": Table("t", {"key": ["a", "b"]})})
        catalog.save()
        assert main(["catalog", "watch", path, "--cycles", "1"]) == 1
        assert "no recorded corpus parameters" in capsys.readouterr().err

    def test_watch_validates_flags(self, capsys, tmp_path):
        path = str(tmp_path / "cat")
        assert main(["catalog", "build", path, "--tables", "4"]) == 0
        capsys.readouterr()
        assert main(["catalog", "watch", path, "--interval", "0"]) == 2
        assert main(["catalog", "watch", path, "--cycles", "0"]) == 2

    def test_watch_picks_up_parameter_change(self, capsys, tmp_path):
        """An out-of-band corpus-parameter change (what 'catalog
        update' records) is noticed on the next cycle and re-signed."""
        import json as json_module
        import os

        path = str(tmp_path / "cat")
        assert main(["catalog", "build", path, "--tables", "4"]) == 0
        capsys.readouterr()
        params_path = os.path.join(path, "cli_corpus.json")
        with open(params_path, encoding="utf-8") as handle:
            params = json_module.load(handle)
        params["tables"] = 6
        with open(params_path, "w", encoding="utf-8") as handle:
            json_module.dump(params, handle)
        assert (
            main(
                ["catalog", "watch", path, "--interval", "0.01", "--cycles", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cycle 1: epoch 1, +2 added" in out
        # The follow-up cycle republishes the same snapshot: it must
        # report "unchanged", not replay the previous cycle's diff.
        assert "cycle 2: epoch 1, unchanged" in out


class TestGcResultBudget:
    def test_gc_evicts_run_records(self, capsys, tmp_path):
        from repro.catalog import CatalogStore

        path = str(tmp_path / "cat")
        assert main(["catalog", "build", path, "--tables", "4"]) == 0
        capsys.readouterr()
        store = CatalogStore(path)
        for i in range(3):
            store.write_result(f"key{i}", {"version": 1, "pad": "x" * 50})
        assert main(["catalog", "gc", path, "--result-budget", "1"]) == 0
        out = capsys.readouterr().out
        assert "evicted 3 run records" in out
        assert store.list_results() == []


class TestRunStalenessBudget:
    def test_staleness_budget_validated(self, capsys):
        code = main(
            ["run", "clustering", "--staleness-budget", "0", "--budget", "5"]
        )
        assert code == 2
        assert "staleness-budget" in capsys.readouterr().err
