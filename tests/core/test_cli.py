"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import SCENARIOS, build_parser, main


class TestParser:
    def test_list_scenarios_parses(self):
        args = build_parser().parse_args(["list-scenarios"])
        assert args.command == "list-scenarios"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "clustering"])
        assert args.budget == 150
        assert args.theta == 1.0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "penguins"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_scenarios_output(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_run_clustering_fast(self, capsys, tmp_path):
        save = str(tmp_path / "out.json")
        code = main(
            [
                "run",
                "clustering",
                "--budget",
                "25",
                "--theta",
                "0.6",
                "--baselines",
                "uniform",
                "--save",
                save,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metam" in out and "uniform" in out
        payload = json.loads(open(save).read())
        assert "metam" in payload

    def test_run_no_baselines_no_chart(self, capsys):
        code = main(
            ["run", "clustering", "--budget", "20", "--theta", "0.6",
             "--baselines", "none", "--no-chart"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metam" in out
        assert "queries" in out

    def test_corpus_stats(self, capsys):
        code = main(["corpus-stats", "--tables", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "#Tables" in out
        assert "12" in out
