"""Unit-level METAM tests against a controllable fake utility oracle.

These complement the scenario-level integration tests: with a lookup-table
task every branch of Algorithm 1 can be forced deterministically.
"""

import numpy as np
import pytest

from repro.core import Metam, MetamConfig
from repro.dataframe import Table
from repro.discovery import Candidate
from repro.tasks.base import Task


class ColumnAug:
    def __init__(self, aug_id):
        self.aug_id = aug_id

    def apply(self, table, base, corpus):
        if self.aug_id in table:
            return table
        return table.with_column(self.aug_id, [1.0] * table.num_rows)


class LookupTask(Task):
    """Utility keyed by the frozenset of augmented columns."""

    name = "lookup"

    def __init__(self, utilities, default=0.1):
        self.utilities = {frozenset(k): v for k, v in utilities.items()}
        self.default = default

    def utility(self, table):
        augs = frozenset(c for c in table.column_names if c.startswith("aug"))
        return self.utilities.get(augs, self.default)


def make_metam(utilities, profiles, config=None, default=0.1):
    """METAM over fake candidates with given profile vectors."""
    base = Table("b", {"x": [1.0, 2.0]})
    candidates = [
        Candidate(
            aug=ColumnAug(f"aug{i}"),
            values=[1.0, 1.0],
            overlap=1.0,
            profile_vector=np.asarray(vec, dtype=float),
        )
        for i, vec in enumerate(profiles)
    ]
    task = LookupTask(utilities, default=default)
    return Metam(
        candidates, base, {}, task, config or MetamConfig(seed=0, epsilon=0.1)
    )


class TestAlgorithmBranches:
    def test_single_good_candidate_found(self):
        utilities = {(): 0.2, ("aug0",): 0.9}
        m = make_metam(utilities, [[0.9, 0.9], [0.1, 0.1], [0.2, 0.2]])
        result = m.run()
        assert result.selected == ["aug0"]
        assert result.utility == 0.9

    def test_theta_stops_early(self):
        utilities = {(): 0.2, ("aug0",): 0.6, ("aug1",): 0.9}
        config = MetamConfig(theta=0.5, query_budget=50, epsilon=0.1, seed=0)
        m = make_metam(utilities, [[0.9, 0.9], [0.5, 0.5]], config)
        result = m.run()
        assert result.utility >= 0.5

    def test_no_improving_candidate_returns_empty(self):
        utilities = {(): 0.5}  # every augmentation defaults to 0.1 < 0.5
        m = make_metam(utilities, [[0.9], [0.1]], default=0.1)
        result = m.run()
        assert result.selected == []
        assert result.utility == 0.5

    def test_group_solution_can_win(self):
        # No single augmentation improves, but the pair does — only the
        # combinatorial (group) mechanism can discover it.
        utilities = {
            (): 0.2,
            ("aug0",): 0.2,
            ("aug1",): 0.2,
            ("aug0", "aug1"): 0.95,
        }
        config = MetamConfig(
            theta=0.9,
            query_budget=300,
            epsilon=0.3,
            group_interval=1,
            groups_per_size=2,
            seed=0,
        )
        m = make_metam(utilities, [[0.9, 0.1], [0.1, 0.9]], config, default=0.2)
        result = m.run()
        assert result.utility == pytest.approx(0.95)
        assert sorted(result.selected) == ["aug0", "aug1"]

    def test_minimality_prunes_redundant(self):
        utilities = {
            (): 0.1,
            ("aug0",): 0.9,
            ("aug1",): 0.3,
            ("aug0", "aug1"): 0.9,
        }
        config = MetamConfig(theta=0.85, query_budget=100, epsilon=0.1, seed=0)
        m = make_metam(utilities, [[0.9], [0.8]], config, default=0.3)
        result = m.run()
        assert result.selected == ["aug0"]

    def test_minimality_disabled(self):
        utilities = {
            (): 0.1,
            ("aug0",): 0.9,
            ("aug0", "aug1"): 0.9,
        }
        config = MetamConfig(
            theta=2.0 / 2, query_budget=100, epsilon=0.1,
            run_minimality=False, seed=0,
        )
        m = make_metam(utilities, [[0.9], [0.8]], config, default=0.05)
        result = m.run()
        assert "aug0" in result.selected

    def test_budget_one_query(self):
        config = MetamConfig(theta=1.0, query_budget=1, epsilon=0.1, seed=0)
        m = make_metam({(): 0.3}, [[0.5], [0.5]], config)
        result = m.run()
        assert result.queries <= 1
        assert result.selected == []

    def test_quality_prior_orders_first_query(self):
        # aug2 has the dominant profile; it must be queried first.
        utilities = {(): 0.2, ("aug2",): 0.8}
        m = make_metam(
            utilities, [[0.1, 0.1], [0.2, 0.2], [0.95, 0.95]],
            MetamConfig(theta=0.7, query_budget=10, epsilon=0.05, seed=0),
        )
        result = m.run()
        # Base query + aug2 query (+ maybe a group query) suffice.
        assert result.utility == 0.8
        assert result.queries <= 4

    def test_monotone_rejections_not_selected(self):
        utilities = {(): 0.5, ("aug0",): 0.4, ("aug1",): 0.7}
        m = make_metam(
            utilities, [[0.9], [0.5]],
            MetamConfig(theta=0.65, query_budget=30, epsilon=0.1, seed=0),
            default=0.4,
        )
        result = m.run()
        assert "aug0" not in result.selected
        assert result.utility == 0.7

    def test_trace_starts_with_base(self):
        m = make_metam({(): 0.3, ("aug0",): 0.6}, [[0.9], [0.1]])
        result = m.run()
        assert result.trace[0] == (1, 0.3)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MetamConfig(theta=1.5)
        with pytest.raises(ValueError):
            MetamConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            MetamConfig(query_budget=0)
        with pytest.raises(ValueError):
            MetamConfig(tau=0)
        with pytest.raises(ValueError):
            MetamConfig(group_interval=0)
        with pytest.raises(ValueError):
            MetamConfig(homogeneity="sometimes")

    def test_tau_one_commits_first_improvement(self):
        utilities = {(): 0.2, ("aug0",): 0.6, ("aug1",): 0.9}
        config = MetamConfig(
            theta=0.55, tau=1, query_budget=20, epsilon=0.1, seed=0
        )
        m = make_metam(utilities, [[0.9], [0.1]], config)
        result = m.run()
        # With tau=1 the round commits aug0 (the prior's top pick)
        # immediately once it improves.
        assert result.utility >= 0.55
