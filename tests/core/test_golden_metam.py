"""Golden end-to-end regression: pinned Metam discovery output.

Pins the full discovery front-end + search-loop output (candidate set,
selected augmentations, utility trajectory) on a small seeded scenario,
so catalog/storage refactors can never silently drift results.  The same
pinned run is repeated catalog-backed (warm start from a freshly saved
store), which must be indistinguishable from the cold run.

If an *intentional* algorithm change moves these values, regenerate them
with the cold run below and update the constants in the same commit.
"""

import hashlib

import numpy as np
import pytest

from repro import MetamConfig, prepare_candidates, run_metam
from repro.catalog import Catalog, CatalogStore
from repro.data import housing_scenario

SEED = 0
CONFIG = dict(theta=0.8, query_budget=30, epsilon=0.1, seed=SEED)

GOLDEN_N_CANDIDATES = 34
GOLDEN_FIRST_IDS = [
    "zipcode→bike_racks.zipcode#rack_count",
    "zipcode→lookalike_0.zipcode#shadow_metric_0",
    "zipcode→lookalike_1.zipcode#shadow_metric_1",
    "zipcode→lookalike_2.zipcode#shadow_metric_2",
    "zipcode→lookalike_3.zipcode#shadow_metric_3",
]
GOLDEN_IDS_DIGEST = "bdd079a8d5ff0e0b"
GOLDEN_SELECTED = ["zipcode→acs_income.zipcode#median_income"]
GOLDEN_BASE_UTILITY = 0.51
GOLDEN_UTILITY = 0.78
GOLDEN_QUERIES = 30
# (query index, best-utility-so-far) pairs, the paper's figure axes.
GOLDEN_TRACE = (
    [(q, 0.51) for q in range(1, 5)]
    + [(5, 0.61)]
    + [(q, 0.65) for q in range(6, 17)]
    + [(17, 0.66)]
    + [(q, 0.81) for q in range(18, 31)]
)


def ids_digest(candidates) -> str:
    joined = "\n".join(c.aug_id for c in candidates)
    return hashlib.blake2b(joined.encode("utf-8"), digest_size=8).hexdigest()


@pytest.fixture(scope="module")
def scenario():
    return housing_scenario(seed=SEED)


@pytest.fixture(scope="module")
def cold(scenario):
    candidates = prepare_candidates(scenario.base, scenario.corpus, seed=SEED)
    result = run_metam(
        candidates, scenario.base, scenario.corpus, scenario.task,
        MetamConfig(**CONFIG),
    )
    return candidates, result


class TestGoldenColdRun:
    def test_candidate_set_pinned(self, cold):
        candidates, _result = cold
        assert len(candidates) == GOLDEN_N_CANDIDATES
        assert [c.aug_id for c in candidates[:5]] == GOLDEN_FIRST_IDS
        assert ids_digest(candidates) == GOLDEN_IDS_DIGEST

    def test_search_output_pinned(self, cold):
        _candidates, result = cold
        assert result.selected == GOLDEN_SELECTED
        assert round(result.base_utility, 6) == GOLDEN_BASE_UTILITY
        assert round(result.utility, 6) == GOLDEN_UTILITY
        assert result.queries == GOLDEN_QUERIES
        assert [(q, round(u, 6)) for q, u in result.trace] == GOLDEN_TRACE


class TestGoldenEngineRun:
    def test_engine_run_matches_golden(self, scenario, cold):
        """The engine path (prepare inside discover) must reproduce the
        legacy free-function path byte for byte."""
        from repro.api import DiscoveryEngine, DiscoveryRequest

        cold_candidates, cold_result = cold
        engine = DiscoveryEngine(corpus=scenario.corpus)
        run = engine.discover(
            DiscoveryRequest(
                base=scenario.base,
                task=scenario.task,
                searcher="metam",
                seed=SEED,
                config=MetamConfig(**CONFIG),
            )
        )
        assert run.n_candidates == GOLDEN_N_CANDIDATES
        assert run.result.selected == GOLDEN_SELECTED
        assert round(run.result.base_utility, 6) == GOLDEN_BASE_UTILITY
        assert round(run.result.utility, 6) == GOLDEN_UTILITY
        assert run.result.queries == GOLDEN_QUERIES
        assert [(q, round(u, 6)) for q, u in run.result.trace] == GOLDEN_TRACE
        assert run.result.trace == cold_result.trace  # exact, not rounded
        prepared = engine.prepare(scenario.base, seed=SEED)
        assert ids_digest(prepared) == GOLDEN_IDS_DIGEST
        for cold_c, engine_c in zip(cold_candidates, prepared, strict=True):
            assert np.array_equal(cold_c.profile_vector, engine_c.profile_vector)


class TestGoldenCatalogRun:
    def test_catalog_backed_run_matches_golden(self, tmp_path, scenario, cold):
        cold_candidates, cold_result = cold
        catalog = Catalog(
            CatalogStore(str(tmp_path / "cat")), min_containment=0.3, seed=SEED
        )
        catalog.refresh(scenario.corpus)
        catalog.save()

        warm_catalog = Catalog.load(str(tmp_path / "cat"), corpus=scenario.corpus)
        candidates = prepare_candidates(
            scenario.base, scenario.corpus, seed=SEED, catalog=warm_catalog
        )
        assert warm_catalog.computed_columns == 0
        assert ids_digest(candidates) == GOLDEN_IDS_DIGEST
        for cold_c, warm_c in zip(cold_candidates, candidates, strict=True):
            assert np.array_equal(cold_c.profile_vector, warm_c.profile_vector)

        result = run_metam(
            candidates, scenario.base, scenario.corpus, scenario.task,
            MetamConfig(**CONFIG),
        )
        assert result.selected == GOLDEN_SELECTED
        assert round(result.utility, 6) == GOLDEN_UTILITY
        assert [(q, round(u, 6)) for q, u in result.trace] == GOLDEN_TRACE
        assert result.trace == cold_result.trace  # exact, not just rounded
