"""Tests for the SearchResult container."""

import pytest

from repro.core import SearchResult


def make(trace=None, base=0.2, utility=0.8):
    return SearchResult(
        searcher="metam",
        selected=["a"],
        utility=utility,
        base_utility=base,
        queries=7,
        trace=trace if trace is not None else [(1, 0.2), (4, 0.5), (7, 0.8)],
    )


class TestSearchResult:
    def test_gain(self):
        assert make().gain == pytest.approx(0.6)

    def test_utility_at_before_first_query(self):
        assert make().utility_at(0) == 0.2  # falls back to base utility

    def test_utility_at_mid_trace(self):
        assert make().utility_at(5) == 0.5

    def test_utility_at_beyond_trace(self):
        assert make().utility_at(100) == 0.8

    def test_utility_at_empty_trace(self):
        assert make(trace=[]).utility_at(10) == 0.2

    def test_summary_contains_key_facts(self):
        text = make().summary()
        assert "metam" in text
        assert "0.200" in text and "0.800" in text
        assert "7 queries" in text

    def test_extras_default_empty(self):
        assert make().extras == {}
