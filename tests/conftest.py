"""Test-suite root conftest: make ``tests.harness`` importable.

``python -m pytest`` puts the repo root on ``sys.path`` already; this
covers bare ``pytest`` invocations (and IDEs) so the shared harness
imports the same way everywhere.
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)
