"""Reusable fault-injection helpers for crash-safety tests.

The catalog store (and everything layered on it — the catalog facade,
the background refresher, the persistent result tier) claims crash
safety at specific protocol points: a writer killed between its log
append and manifest compaction, a deleter killed between its tombstone
append and file removal, a torn log tail from a writer killed
mid-append.  These helpers express all three fault shapes once:

``crash_at(store, point)``
    Context manager raising :class:`InjectedCrash` from the store's
    ``fault_hook`` at the named protocol point — an in-process
    "writer death" that unit tests can assert around.

``exit_hook(point, code)``
    A ``fault_hook`` that ``os._exit``\\ s at the point — a *real*
    process death (no ``finally`` blocks, no interpreter teardown) for
    forked subprocess writers.

``run_killed(target, args, exitcode)`` / ``run_ok(jobs)``
    Fork-based subprocess drivers: the first asserts the worker died
    with the injected exit code, the second fans out concurrent
    writers and asserts they all succeeded.

``torn_log(path, records, torn_tail)``
    Write a shard-manifest-style JSON-line log ending in a torn
    fragment — the on-disk shape a writer killed mid-append leaves.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from contextlib import contextmanager

#: Exit code every ``exit_hook`` worker dies with (asserted by
#: ``run_killed`` so an unrelated crash can't pass as the injected one).
KILLED_EXIT_CODE = 17


class InjectedCrash(BaseException):
    """Simulated writer death (BaseException so no handler eats it)."""


def crash_hook(point: str, exception=InjectedCrash):
    """A ``fault_hook`` raising ``exception`` at ``point``."""

    def hook(name: str) -> None:
        if name == point:
            raise exception(name)

    return hook


@contextmanager
def crash_at(store, point: str):
    """Install a crash hook on ``store`` for the duration of the block.

    The protected operation is expected to die with
    :class:`InjectedCrash` (assert with ``pytest.raises``); the previous
    hook is restored afterwards, so one test can crash several points in
    sequence."""
    previous = store.fault_hook
    store.fault_hook = crash_hook(point)
    try:
        yield store
    finally:
        store.fault_hook = previous


def exit_hook(point: str, code: int = KILLED_EXIT_CODE):
    """A ``fault_hook`` that kills the *process* at ``point``.

    ``os._exit`` skips every ``finally`` block and all interpreter
    teardown — the closest a test can get to ``kill -9`` from inside."""

    def hook(name: str) -> None:
        if name == point:
            os._exit(code)

    return hook


def fork_context():
    """The fork start method (these tests inject faults into inherited
    store objects, which spawn's pickling path cannot carry)."""
    return multiprocessing.get_context("fork")


def run_killed(target, args=(), exitcode: int = KILLED_EXIT_CODE) -> None:
    """Fork-run ``target(*args)`` and assert it died with ``exitcode``
    (the injected death, not an incidental crash)."""
    worker = fork_context().Process(target=target, args=args)
    worker.start()
    worker.join()
    assert worker.exitcode == exitcode, (
        f"worker exited {worker.exitcode}, expected injected {exitcode}"
    )


def run_ok(jobs) -> None:
    """Fork ``jobs`` (``(target, args)`` pairs) concurrently; join all
    and assert every worker exited 0."""
    ctx = fork_context()
    workers = [ctx.Process(target=target, args=args) for target, args in jobs]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
        assert worker.exitcode == 0, f"worker died with {worker.exitcode}"


def torn_log(path: str, records, torn_tail: str = None) -> None:
    """Write JSON-line ``records`` to ``path``, optionally ending with
    ``torn_tail`` — a partial record with no newline, exactly what a
    writer killed mid-append leaves behind."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        if torn_tail is not None:
            handle.write(torn_tail)


def torn_artifact(path: str, blob: bytes, keep_fraction: float = 0.5) -> None:
    """Leave a truncated binary artifact at ``path`` — the on-disk shape
    a writer killed mid-``write_bytes`` (or a crashed codec upgrade)
    leaves behind.  ``keep_fraction`` of the healthy ``blob`` survives;
    the store's read path must fail closed onto another representation
    and ``verify()`` must report this file."""
    kept = blob[: max(1, int(len(blob) * keep_fraction))]
    with open(path, "wb") as handle:
        handle.write(kept)
