"""Shared test harness: fault injection and store-content builders.

Import as ``from tests.harness import faults`` (the repo root is on
``sys.path`` via ``python -m pytest`` and ``tests/conftest.py``).
"""
