"""Minimal store-content builders shared by catalog crash/stress tests."""

from __future__ import annotations

from repro.catalog.fingerprint import shard_of
from repro.discovery.index import ColumnEntry
from repro.discovery.minhash import MinHasher


def make_entry(values, num_perm: int = 8) -> ColumnEntry:
    """One indexable column entry over ``values``."""
    distinct = frozenset(values)
    return ColumnEntry(
        distinct=distinct,
        normalized=frozenset(v.strip().lower() for v in distinct),
        signature=MinHasher(num_perm=num_perm).signature(distinct),
    )


def same_shard_fingerprints(count: int, shard: str = None) -> list:
    """``count`` distinct fingerprints hashing to one shard directory —
    the maximum-contention case for the shard manifest protocol."""
    found = []
    i = 0
    while len(found) < count:
        candidate = f"fp{i:06d}"
        i += 1
        if shard is None:
            shard = shard_of(candidate)
        if shard_of(candidate) == shard:
            found.append(candidate)
    return found
