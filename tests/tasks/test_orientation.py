"""Tests for PC orientation (v-structures + Meek rules)."""

import numpy as np

from repro.tasks.causal.orientation import (
    Cpdag,
    orient_edges,
    pc_cpdag,
    skeleton_with_sepsets,
)


def collider_data(n=800, seed=0):
    """a → c ← b with a ⊥ b marginally."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=n)
    b = rng.normal(size=n)
    c = a + b + rng.normal(scale=0.3, size=n)
    return np.column_stack([a, b, c])


class TestSkeletonWithSepsets:
    def test_collider_skeleton(self):
        edges, sepsets = skeleton_with_sepsets(collider_data(), max_cond=1)
        assert frozenset((0, 2)) in edges
        assert frozenset((1, 2)) in edges
        assert frozenset((0, 1)) not in edges

    def test_sepset_recorded(self):
        _, sepsets = skeleton_with_sepsets(collider_data(), max_cond=1)
        # a ⊥ b with the empty set — c must NOT be in the sepset.
        assert 2 not in sepsets[frozenset((0, 1))]


class TestOrientation:
    def test_collider_oriented(self):
        graph = pc_cpdag(collider_data(), max_cond=1)
        assert (0, 2) in graph.directed
        assert (1, 2) in graph.directed

    def test_chain_stays_partially_undirected(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=800)
        b = a + rng.normal(scale=0.3, size=800)
        c = b + rng.normal(scale=0.3, size=800)
        graph = pc_cpdag(np.column_stack([a, b, c]), max_cond=1)
        # A chain is Markov-equivalent to its reversal: no collider at b,
        # so a-b and b-c cannot both be oriented into b.
        assert not ((0, 1) in graph.directed and (2, 1) in graph.directed)

    def test_meek_rule1_propagates(self):
        # Skeleton: a-b, b-c; a→b known; a,c non-adjacent ⇒ b→c.
        graph = Cpdag(3)
        graph.undirected = {frozenset((1, 2))}
        graph.directed = {(0, 1)}
        from repro.tasks.causal.orientation import _meek_rule1

        assert _meek_rule1(graph)
        assert (1, 2) in graph.directed

    def test_meek_rule2_propagates(self):
        # a→b→c and a-c ⇒ a→c (avoid cycle).
        graph = Cpdag(3)
        graph.directed = {(0, 1), (1, 2)}
        graph.undirected = {frozenset((0, 2))}
        from repro.tasks.causal.orientation import _meek_rule2

        assert _meek_rule2(graph)
        assert (0, 2) in graph.directed

    def test_orient_missing_edge_false(self):
        graph = Cpdag(2)
        assert not graph.orient(0, 1)

    def test_orient_edges_empty(self):
        graph = orient_edges(set(), {}, 3)
        assert graph.directed == set()
        assert graph.undirected == set()

    def test_independent_data_no_edges(self):
        rng = np.random.default_rng(2)
        graph = pc_cpdag(rng.normal(size=(400, 3)), max_cond=1)
        assert graph.directed == set()
        assert graph.undirected == set()
