"""Tests for classification, regression, AutoML and fairness tasks."""

import numpy as np
import pytest

from repro.dataframe import Table
from repro.tasks import (
    AutoMLTask,
    ClassificationTask,
    FairClassificationTask,
    RegressionTask,
    canonical_column,
)


def make_classification_table(n=200, informative=True, seed=0):
    rng = np.random.default_rng(seed)
    signal = rng.normal(size=n)
    label = np.where(signal + rng.normal(scale=0.3, size=n) > 0, "yes", "no")
    feature = signal if informative else rng.normal(size=n)
    return Table(
        "t",
        {"id": [str(i) for i in range(n)], "feature": feature.tolist(), "label": label.tolist()},
    )


class TestCanonicalColumn:
    def test_plain_column(self):
        assert canonical_column("income") == "income"

    def test_augmented_column(self):
        assert canonical_column("zip→crime.zipcode#crime_count") == "crime_count"


class TestClassificationTask:
    def test_informative_feature_high_utility(self):
        task = ClassificationTask("label", exclude_columns=("id",), seed=0)
        assert task.utility(make_classification_table(informative=True)) > 0.8

    def test_uninformative_feature_low_utility(self):
        task = ClassificationTask("label", exclude_columns=("id",), seed=0)
        assert task.utility(make_classification_table(informative=False)) < 0.65

    def test_deterministic(self):
        task = ClassificationTask("label", exclude_columns=("id",), seed=0)
        table = make_classification_table()
        assert task.utility(table) == task.utility(table)

    def test_missing_target_raises(self):
        task = ClassificationTask("nope")
        with pytest.raises(KeyError):
            task.utility(make_classification_table())

    def test_no_features_zero(self):
        table = Table("t", {"label": ["a", "b"] * 20})
        assert ClassificationTask("label").utility(table) == 0.0

    def test_single_class_zero(self):
        table = Table("t", {"x": list(range(40)), "label": ["a"] * 40})
        assert ClassificationTask("label").utility(table) == 0.0

    def test_f1_metric(self):
        task = ClassificationTask("label", metric="f1", exclude_columns=("id",), seed=0)
        assert 0.0 <= task.utility(make_classification_table()) <= 1.0

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            ClassificationTask("label", metric="auc")

    def test_utility_in_unit_interval(self):
        task = ClassificationTask("label", exclude_columns=("id",), seed=0)
        u = task.utility(make_classification_table(informative=False, seed=3))
        assert 0.0 <= u <= 1.0


class TestRegressionTask:
    @pytest.fixture
    def table(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=250)
        y = 3.0 * x + rng.normal(scale=0.2, size=250)
        return Table(
            "t",
            {"id": [str(i) for i in range(250)], "x": x.tolist(), "y": y.tolist()},
        )

    def test_informative_feature_positive_utility(self, table):
        task = RegressionTask("y", exclude_columns=("id",), seed=0)
        assert task.utility(table) > 0.4

    def test_uninformative_near_zero(self):
        rng = np.random.default_rng(1)
        table = Table(
            "t",
            {"junk": rng.normal(size=250).tolist(), "y": rng.normal(size=250).tolist()},
        )
        assert RegressionTask("y", seed=0).utility(table) < 0.2

    def test_constant_target_zero(self):
        table = Table("t", {"x": list(range(50)), "y": [5.0] * 50})
        assert RegressionTask("y").utility(table) == 0.0

    def test_too_few_rows_zero(self):
        table = Table("t", {"x": [1, 2], "y": [1.0, 2.0]})
        assert RegressionTask("y").utility(table) == 0.0

    def test_missing_target_raises(self, table):
        with pytest.raises(KeyError):
            RegressionTask("nope").utility(table)

    def test_nan_targets_dropped(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=100)
        y = (2 * x).tolist()
        y[::10] = [None] * 10
        table = Table("t", {"x": x.tolist(), "y": y})
        u = RegressionTask("y", seed=0).utility(table)
        assert 0.0 <= u <= 1.0


class TestAutoMLTask:
    def test_learnable(self):
        task = AutoMLTask("label", exclude_columns=("id",), seed=0)
        assert task.utility(make_classification_table()) > 0.75

    def test_missing_target(self):
        with pytest.raises(KeyError):
            AutoMLTask("nope").utility(make_classification_table())

    def test_single_class_zero(self):
        table = Table("t", {"x": list(range(40)), "label": ["a"] * 40})
        assert AutoMLTask("label").utility(table) == 0.0


class TestFairClassificationTask:
    @pytest.fixture
    def table(self):
        rng = np.random.default_rng(0)
        n = 300
        age = rng.uniform(20, 70, size=n)
        age_n = (age - age.mean()) / age.std()
        merit = rng.normal(size=n)
        label = np.where(1.5 * merit + 0.8 * age_n + rng.normal(scale=0.4, size=n) > 0, "hi", "lo")
        return Table(
            "t",
            {
                "age": age.tolist(),
                "unfair_feature": (0.95 * age_n + 0.1 * rng.normal(size=n)).tolist(),
                "fair_feature": merit.tolist(),
                "label": label.tolist(),
            },
        )

    def test_fair_feature_used(self, table):
        task = FairClassificationTask("label", "age", seed=0)
        assert task.utility(table) > 0.6

    def test_unfair_feature_excluded(self, table):
        # Dropping the fair feature leaves only the unfair one, which the
        # filter discards -> utility collapses.
        reduced = table.drop_columns(["fair_feature"])
        task = FairClassificationTask("label", "age", seed=0)
        assert task.utility(reduced) < task.utility(table)

    def test_all_features_unfair_zero(self):
        rng = np.random.default_rng(1)
        age = rng.uniform(20, 70, size=100)
        table = Table(
            "t",
            {
                "age": age.tolist(),
                "proxy": (age * 1.01).tolist(),
                "label": np.where(age > 45, "a", "b").tolist(),
            },
        )
        assert FairClassificationTask("label", "age", seed=0).utility(table) == 0.0

    def test_missing_sensitive_raises(self, table):
        with pytest.raises(KeyError):
            FairClassificationTask("label", "nope").utility(table)
