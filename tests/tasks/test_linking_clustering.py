"""Tests for entity linking and clustering tasks."""

import numpy as np
import pytest

from repro.dataframe import Table
from repro.tasks import ClusteringTask, EntityLinkingTask, KnowledgeBase


@pytest.fixture
def kb():
    kb = KnowledgeBase()
    kb.add_entity("springfield", "springfield_il", {"illinois"})
    kb.add_entity("springfield", "springfield_ma", {"massachusetts"})
    kb.add_entity("chicago", "chicago_il", {"illinois"})
    return kb


class TestKnowledgeBase:
    def test_candidates_case_insensitive(self, kb):
        assert len(kb.candidates("Springfield")) == 2
        assert len(kb.candidates("CHICAGO")) == 1

    def test_unknown_mention(self, kb):
        assert kb.candidates("atlantis") == []

    def test_len_counts_mentions(self, kb):
        assert len(kb) == 2


class TestEntityLinkingTask:
    def test_unambiguous_links_without_context(self, kb):
        table = Table(
            "t",
            {"city": ["chicago", "chicago"], "truth": ["chicago_il", "chicago_il"]},
        )
        task = EntityLinkingTask("city", "truth", kb)
        assert task.utility(table) == 1.0

    def test_ambiguous_fails_without_context(self, kb):
        table = Table(
            "t",
            {"city": ["springfield"], "truth": ["springfield_il"]},
        )
        assert EntityLinkingTask("city", "truth", kb).utility(table) == 0.0

    def test_context_column_disambiguates(self, kb):
        table = Table(
            "t",
            {
                "city": ["springfield", "springfield"],
                "state": ["illinois", "massachusetts"],
                "truth": ["springfield_il", "springfield_ma"],
            },
        )
        assert EntityLinkingTask("city", "truth", kb).utility(table) == 1.0

    def test_truth_column_not_used_as_context(self, kb):
        # The truth column must not leak into the linker's context.
        table = Table(
            "t",
            {"city": ["springfield"], "truth": ["springfield_il"]},
        )
        task = EntityLinkingTask("city", "truth", kb)
        assert task.utility(table) == 0.0

    def test_missing_mentions_skipped(self, kb):
        table = Table(
            "t",
            {"city": [None, "chicago"], "truth": [None, "chicago_il"]},
        )
        assert EntityLinkingTask("city", "truth", kb).utility(table) == 0.5

    def test_missing_column_raises(self, kb):
        table = Table("t", {"city": ["chicago"]})
        with pytest.raises(KeyError):
            EntityLinkingTask("city", "truth", kb).utility(table)


class TestClusteringTask:
    def make_table(self, informative: bool, seed=0, n=90):
        rng = np.random.default_rng(seed)
        category = rng.integers(0, 3, size=n)
        satiety = np.array([2.0, 5.0, 8.0])[category] + rng.normal(scale=0.2, size=n)
        feature = (
            np.array([0.0, 4.0, 8.0])[category] + rng.normal(scale=0.15, size=n)
            if informative
            else rng.normal(size=n)
        )
        return Table(
            "t", {"satiety": satiety.tolist(), "feature": feature.tolist()}
        )

    def test_informative_feature_improves_utility(self):
        task = ClusteringTask("satiety", n_clusters=3, seed=0)
        u_good = task.utility(self.make_table(informative=True))
        u_bad = task.utility(self.make_table(informative=False))
        assert u_good > u_bad + 0.2

    def test_constant_score_perfect(self):
        table = Table("t", {"satiety": [5.0] * 30, "f": list(range(30))})
        assert ClusteringTask("satiety", n_clusters=3).utility(table) == 1.0

    def test_too_few_rows_zero(self):
        table = Table("t", {"satiety": [1.0, 2.0], "f": [1, 2]})
        assert ClusteringTask("satiety", n_clusters=3).utility(table) == 0.0

    def test_no_features_zero(self):
        table = Table("t", {"satiety": [1.0, 5.0, 9.0, 2.0]})
        assert ClusteringTask("satiety", n_clusters=3).utility(table) == 0.0

    def test_missing_score_column(self):
        table = Table("t", {"f": [1, 2, 3]})
        with pytest.raises(KeyError):
            ClusteringTask("satiety").utility(table)

    def test_utility_in_unit_interval(self):
        task = ClusteringTask("satiety", n_clusters=3, seed=0)
        for seed in range(3):
            u = task.utility(self.make_table(informative=False, seed=seed))
            assert 0.0 <= u <= 1.0
