"""Tests for causal graph, CI tests, PC-lite and what-if/how-to tasks."""

import numpy as np
import pytest

from repro.dataframe import Table
from repro.tasks import CausalGraph, HowToTask, WhatIfTask, pc_skeleton
from repro.tasks.causal import dependent_columns, fisher_z_independence


class TestCausalGraph:
    def test_descendants(self):
        g = CausalGraph()
        g.add_edge("a", "b").add_edge("b", "c")
        assert g.descendants("a") == {"b", "c"}

    def test_parents(self):
        g = CausalGraph()
        g.add_edge("a", "c").add_edge("b", "c")
        assert g.parents("c") == {"a", "b"}

    def test_cycle_rejected(self):
        g = CausalGraph()
        g.add_edge("a", "b")
        with pytest.raises(ValueError, match="cycle"):
            g.add_edge("b", "a")

    def test_topological_order(self):
        g = CausalGraph()
        g.add_edge("a", "b").add_edge("b", "c")
        order = g.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_contains(self):
        g = CausalGraph().add_variable("x")
        assert "x" in g and "y" not in g


class TestCiTest:
    def test_dependent_detected(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=400)
        data = np.column_stack([x, x + rng.normal(scale=0.2, size=400)])
        independent, p = fisher_z_independence(data, 0, 1)
        assert not independent
        assert p < 0.01

    def test_independent_detected(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(400, 2))
        independent, _ = fisher_z_independence(data, 0, 1)
        assert independent

    def test_conditioning_removes_confounding(self):
        rng = np.random.default_rng(2)
        z = rng.normal(size=500)
        data = np.column_stack(
            [z + rng.normal(scale=0.1, size=500), z + rng.normal(scale=0.1, size=500), z]
        )
        dependent_raw, _ = fisher_z_independence(data, 0, 1)
        independent_cond, _ = fisher_z_independence(data, 0, 1, cond=(2,))
        assert not dependent_raw
        assert independent_cond

    def test_nan_rows_dropped(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=100)
        y = x + rng.normal(scale=0.1, size=100)
        x[:5] = np.nan
        independent, _ = fisher_z_independence(np.column_stack([x, y]), 0, 1)
        assert not independent

    def test_tiny_sample_conservative(self):
        data = np.array([[1.0, 2.0], [2.0, 4.0], [3.0, 6.0]])
        independent, p = fisher_z_independence(data, 0, 1)
        assert independent and p == 1.0


class TestPcSkeleton:
    def test_chain_recovered(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=600)
        b = a + rng.normal(scale=0.3, size=600)
        c = b + rng.normal(scale=0.3, size=600)
        edges = pc_skeleton(np.column_stack([a, b, c]), max_cond=1)
        assert frozenset((0, 1)) in edges
        assert frozenset((1, 2)) in edges
        assert frozenset((0, 2)) not in edges  # separated by b

    def test_independent_pair_no_edge(self):
        rng = np.random.default_rng(1)
        edges = pc_skeleton(rng.normal(size=(300, 2)), max_cond=0)
        assert edges == set()


class TestDependentColumns:
    def test_finds_direct_dependence(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=400)
        data = np.column_stack([x, x + rng.normal(scale=0.2, size=400), rng.normal(size=400)])
        found = dependent_columns(data, 0, [1, 2])
        assert found == {1}

    def test_conditioning_pool_separates(self):
        rng = np.random.default_rng(1)
        z = rng.normal(size=500)
        x = z + rng.normal(scale=0.1, size=500)
        y = z + rng.normal(scale=0.1, size=500)
        data = np.column_stack([x, y, z])
        # Without the pool, y looks dependent on x; with z it separates.
        assert dependent_columns(data, 0, [1]) == {1}
        assert dependent_columns(data, 0, [1], cond_pool=[2], max_cond=1) == set()


def build_whatif_table(n=300, seed=0):
    rng = np.random.default_rng(seed)
    reading = rng.normal(size=n)
    writing = 0.8 * reading + rng.normal(scale=0.3, size=n)
    noise = rng.normal(size=n)
    return Table(
        "sat",
        {
            "reading": reading.tolist(),
            "writing": writing.tolist(),
            "unrelated": noise.tolist(),
        },
    )


class TestWhatIfTask:
    def test_utility_rises_with_true_effect(self):
        table = build_whatif_table()
        task = WhatIfTask("reading", truth_affected={"writing", "ghost"})
        no_writing = table.drop_columns(["writing"])
        assert task.utility(no_writing) == 0.0
        assert task.utility(table) == 0.5  # 1 of 2 truths found

    def test_augmented_column_canonicalized(self):
        table = build_whatif_table().rename_column("writing", "path#writing")
        task = WhatIfTask("reading", truth_affected={"writing"})
        assert task.utility(table) == 1.0

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            WhatIfTask("x", truth_affected=set())

    def test_missing_treatment_raises(self):
        task = WhatIfTask("nope", truth_affected={"writing"})
        with pytest.raises(KeyError):
            task.utility(build_whatif_table())

    def test_unrelated_column_not_counted(self):
        table = build_whatif_table()
        task = WhatIfTask("reading", truth_affected={"unrelated"})
        assert task.utility(table) == 0.0


class TestHowToTask:
    def test_finds_causes(self):
        rng = np.random.default_rng(0)
        study = rng.normal(size=300)
        outcome = 1.5 * study + rng.normal(scale=0.3, size=300)
        table = Table(
            "t",
            {
                "outcome": outcome.tolist(),
                "study": study.tolist(),
                "noise": rng.normal(size=300).tolist(),
            },
        )
        task = HowToTask("outcome", truth_causes={"study"})
        assert task.utility(table) == 1.0

    def test_monotone_in_true_causes(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=300)
        b = rng.normal(size=300)
        outcome = a + b + rng.normal(scale=0.3, size=300)
        full = Table(
            "t", {"outcome": outcome.tolist(), "a": a.tolist(), "b": b.tolist()}
        )
        partial = full.drop_columns(["b"])
        task = HowToTask("outcome", truth_causes={"a", "b"})
        assert task.utility(partial) == 0.5
        assert task.utility(full) == 1.0

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            HowToTask("x", truth_causes=[])
