"""Tests for the baseline searchers."""

import pytest

from repro import prepare_candidates, run_baseline
from repro.baselines import (
    IArdaSearcher,
    JoinEverythingSearcher,
    MultiplicativeWeightsSearcher,
    OverlapSearcher,
    UniformSearcher,
    greedy_monotone_search,
)
from repro.core.querying import QueryEngine
from repro.data import housing_scenario, sat_howto_scenario
from repro.tasks.base import canonical_column


@pytest.fixture(scope="module")
def howto():
    scenario = sat_howto_scenario(seed=0, n_irrelevant=6, n_erroneous=3)
    candidates = prepare_candidates(scenario.base, scenario.corpus, seed=0)
    return scenario, candidates


@pytest.fixture(scope="module")
def housing():
    scenario = housing_scenario(seed=0, n_irrelevant=8, n_erroneous=4, n_traps=3)
    candidates = prepare_candidates(scenario.base, scenario.corpus, seed=0)
    return scenario, candidates


class TestGreedyMonotone:
    def test_improves_and_stops_at_theta(self, howto):
        scenario, candidates = howto
        engine = QueryEngine(
            scenario.task, scenario.base, scenario.corpus, candidates, budget=300
        )
        ranking = sorted(c.aug_id for c in candidates)
        state = greedy_monotone_search(engine, ranking, theta=0.5)
        assert state.utility >= 0.5 or engine.queries == len(ranking) + 1


class TestRankingBaselines:
    @pytest.mark.parametrize("name", ["overlap", "uniform", "mw"])
    def test_baseline_improves(self, howto, name):
        scenario, candidates = howto
        result = run_baseline(
            name,
            candidates,
            scenario.base,
            scenario.corpus,
            scenario.task,
            theta=1.0,
            query_budget=250,
            seed=0,
        )
        assert result.utility > result.base_utility
        assert result.searcher == name

    def test_overlap_rank_order(self, howto):
        scenario, candidates = howto
        searcher = OverlapSearcher(
            candidates, scenario.base, scenario.corpus, scenario.task
        )
        ranking = searcher.rank()
        overlaps = {c.aug_id: c.overlap for c in candidates}
        values = [overlaps[a] for a in ranking]
        assert values == sorted(values, reverse=True)

    def test_uniform_deterministic_per_seed(self, howto):
        scenario, candidates = howto
        a = UniformSearcher(
            candidates, scenario.base, scenario.corpus, scenario.task, seed=5
        ).rank()
        b = UniformSearcher(
            candidates, scenario.base, scenario.corpus, scenario.task, seed=5
        ).rank()
        c = UniformSearcher(
            candidates, scenario.base, scenario.corpus, scenario.task, seed=6
        ).rank()
        assert a == b
        assert a != c

    def test_mw_requires_profiles(self, howto):
        scenario, candidates = howto
        stripped = [
            type(c)(aug=c.aug, values=c.values, overlap=c.overlap)
            for c in candidates
        ]
        with pytest.raises(ValueError):
            MultiplicativeWeightsSearcher(
                stripped, scenario.base, scenario.corpus, scenario.task
            )

    def test_mw_expert_weights_reported(self, howto):
        scenario, candidates = howto
        result = MultiplicativeWeightsSearcher(
            candidates,
            scenario.base,
            scenario.corpus,
            scenario.task,
            theta=1.0,
            query_budget=150,
            seed=0,
        ).run()
        weights = result.extras["expert_weights"]
        assert len(weights) == 5
        assert abs(sum(weights) - 1.0) < 1e-9

    def test_empty_candidates_rejected(self, howto):
        scenario, _ = howto
        with pytest.raises(ValueError):
            UniformSearcher([], scenario.base, scenario.corpus, scenario.task)

    def test_unknown_baseline_name(self, howto):
        scenario, candidates = howto
        with pytest.raises(ValueError):
            run_baseline(
                "greedy", candidates, scenario.base, scenario.corpus, scenario.task
            )


class TestIArda:
    def test_ranks_truth_high_on_classification(self, housing):
        scenario, candidates = housing
        searcher = IArdaSearcher(
            candidates,
            scenario.base,
            scenario.corpus,
            scenario.task,
            target_column="price_label",
            mode="classification",
            seed=0,
        )
        ranking = searcher.rank()
        top10 = {canonical_column(a) for a in ranking[:10]}
        assert top10 & scenario.truth_columns

    def test_run_improves(self, housing):
        scenario, candidates = housing
        result = IArdaSearcher(
            candidates,
            scenario.base,
            scenario.corpus,
            scenario.task,
            target_column="price_label",
            theta=1.0,
            query_budget=120,
            seed=0,
        ).run()
        assert result.utility > result.base_utility


class TestJoinEverything:
    def test_single_query(self, housing):
        scenario, candidates = housing
        result = JoinEverythingSearcher(
            candidates, scenario.base, scenario.corpus, scenario.task
        ).run()
        assert result.queries == 2  # base + everything
        assert len(result.selected) == len(candidates)
