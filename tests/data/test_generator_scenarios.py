"""Tests for the repository builder and scenario generators."""

import pytest

from repro.data import (
    RepositoryBuilder,
    clustering_scenario,
    collisions_scenario,
    entity_linking_scenario,
    fairness_scenario,
    housing_scenario,
    make_keys,
    sat_howto_scenario,
    sat_whatif_scenario,
    schools_scenario,
    themed_scenario,
    unions_scenario,
)
from repro.discovery import DiscoveryIndex, generate_candidates, materialize_candidates
from repro.tasks.base import canonical_column


class TestBuilder:
    def test_make_keys_deterministic(self):
        assert make_keys(3, prefix="z", start=5) == ["z5", "z6", "z7"]

    def test_relevant_table_keyed(self):
        builder = RepositoryBuilder(["a", "b"], key_column="k", seed=0)
        table = builder.add_relevant("t", "v", [1.0, 2.0])
        assert table.column("k") == ["a", "b"]
        assert table.column("v") == [1.0, 2.0]

    def test_relevant_length_mismatch(self):
        builder = RepositoryBuilder(["a", "b"], seed=0)
        with pytest.raises(ValueError):
            builder.add_relevant("t", "v", [1.0])

    def test_irrelevant_count(self):
        builder = RepositoryBuilder(["a", "b"], seed=0)
        assert len(builder.add_irrelevant(4)) == 4

    def test_erroneous_keys_shuffled(self):
        keys = [f"k{i}" for i in range(50)]
        builder = RepositoryBuilder(keys, key_column="k", seed=0)
        table = builder.add_erroneous(1, signal_values=list(range(50)))[0]
        assert sorted(table.column("k")) == sorted(keys)
        assert table.column("k") != keys

    def test_name_collision_resolved(self):
        builder = RepositoryBuilder(["a"], seed=0)
        builder.add_table("t", {"x": [1]})
        second = builder.add_table("t", {"x": [2]})
        assert second.name == "t_2"
        assert len(builder.build()) == 2


ALL_SCENARIOS = [
    housing_scenario,
    schools_scenario,
    collisions_scenario,
    sat_whatif_scenario,
    sat_howto_scenario,
    entity_linking_scenario,
    fairness_scenario,
    clustering_scenario,
]


class TestScenarioContracts:
    @pytest.mark.parametrize("factory", ALL_SCENARIOS)
    def test_base_utility_in_unit_interval(self, factory):
        scenario = factory(seed=0)
        u = scenario.task.utility(scenario.base)
        assert 0.0 <= u <= 1.0

    @pytest.mark.parametrize("factory", ALL_SCENARIOS)
    def test_truth_augmentations_discoverable(self, factory):
        scenario = factory(seed=0)
        index = DiscoveryIndex(min_containment=0.3, seed=0).build(
            scenario.corpus.values()
        )
        augs = generate_candidates(scenario.base, index, max_hops=1)
        candidates = materialize_candidates(scenario.base, augs, scenario.corpus)
        found = {canonical_column(c.aug_id) for c in candidates}
        assert scenario.truth_columns <= found

    @pytest.mark.parametrize("factory", ALL_SCENARIOS)
    def test_truth_augmentations_raise_utility(self, factory):
        scenario = factory(seed=0)
        index = DiscoveryIndex(min_containment=0.3, seed=0).build(
            scenario.corpus.values()
        )
        augs = generate_candidates(scenario.base, index, max_hops=1)
        candidates = materialize_candidates(scenario.base, augs, scenario.corpus)
        table = scenario.base
        for c in candidates:
            if canonical_column(c.aug_id) in scenario.truth_columns:
                table = c.aug.apply(table, scenario.base, scenario.corpus)
        base_u = scenario.task.utility(scenario.base)
        aug_u = scenario.task.utility(table)
        assert aug_u > base_u + 0.05

    @pytest.mark.parametrize("factory", ALL_SCENARIOS)
    def test_deterministic_given_seed(self, factory):
        a = factory(seed=7)
        b = factory(seed=7)
        assert a.base == b.base
        assert sorted(a.corpus) == sorted(b.corpus)


class TestThemedScenarios:
    @pytest.mark.parametrize("theme", ["schools", "taxi", "crime", "housing"])
    def test_causal_theme_kind(self, theme):
        scenario = themed_scenario(theme, seed=0)
        assert scenario.name.endswith("causal")
        assert scenario.truth_columns

    @pytest.mark.parametrize("theme", ["pharmacy", "grocery"])
    def test_analytics_theme_kind(self, theme):
        scenario = themed_scenario(theme, seed=0)
        assert scenario.name.endswith("analytics")

    def test_unknown_theme(self):
        with pytest.raises(ValueError):
            themed_scenario("penguins")

    def test_causal_truth_lift(self):
        scenario = themed_scenario("crime", seed=0)
        index = DiscoveryIndex(min_containment=0.3, seed=0).build(
            scenario.corpus.values()
        )
        augs = generate_candidates(scenario.base, index, max_hops=1)
        candidates = materialize_candidates(scenario.base, augs, scenario.corpus)
        table = scenario.base
        for c in candidates:
            if canonical_column(c.aug_id) in scenario.truth_columns:
                table = c.aug.apply(table, scenario.base, scenario.corpus)
        assert scenario.task.utility(table) == 1.0


class TestUnionsScenario:
    def test_good_unions_improve(self):
        from repro.discovery import find_union_candidates

        scenario = unions_scenario(seed=0)
        unions = find_union_candidates(scenario.base, scenario.corpus)
        table = scenario.base
        for u in unions:
            if u.table_name in scenario.truth_columns:
                table = u.apply(table, scenario.base, scenario.corpus)
        assert scenario.task.utility(table) > scenario.task.utility(scenario.base)

    def test_bad_unions_hurt(self):
        from repro.discovery import find_union_candidates

        scenario = unions_scenario(seed=0)
        unions = find_union_candidates(scenario.base, scenario.corpus)
        table = scenario.base
        for u in unions:
            if u.table_name not in scenario.truth_columns:
                table = u.apply(table, scenario.base, scenario.corpus)
        assert scenario.task.utility(table) < scenario.task.utility(scenario.base)
