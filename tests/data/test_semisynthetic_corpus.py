"""Tests for the semi-synthetic protocol and corpus generation."""

import pytest

from repro.data import (
    corpus_characteristics,
    generate_corpus,
    semisynthetic_scenario,
)
from repro.discovery import DiscoveryIndex, generate_candidates, materialize_candidates
from repro.tasks.base import canonical_column


class TestSemisynthetic:
    @pytest.mark.parametrize(
        "task_type", ["classification", "causality", "what_if", "how_to"]
    )
    def test_truth_lift(self, task_type):
        scenario = semisynthetic_scenario(task_type, seed=0, n_tables=15)
        index = DiscoveryIndex(min_containment=0.3, seed=0).build(
            scenario.corpus.values()
        )
        augs = generate_candidates(scenario.base, index, max_hops=1)
        candidates = materialize_candidates(scenario.base, augs, scenario.corpus)
        table = scenario.base
        for c in candidates:
            if canonical_column(c.aug_id) in scenario.truth_columns:
                table = c.aug.apply(table, scenario.base, scenario.corpus)
        assert scenario.task.utility(table) > scenario.task.utility(scenario.base)

    def test_donor_count(self):
        scenario = semisynthetic_scenario("classification", seed=1, n_donors=5)
        assert len(scenario.truth_columns) == 5

    def test_invalid_task_type(self):
        with pytest.raises(ValueError):
            semisynthetic_scenario("ranking")

    def test_donors_exceed_tables(self):
        with pytest.raises(ValueError):
            semisynthetic_scenario("classification", n_tables=3, n_donors=5)

    def test_different_seeds_differ(self):
        a = semisynthetic_scenario("classification", seed=0)
        b = semisynthetic_scenario("classification", seed=1)
        assert a.truth_columns != b.truth_columns or a.base != b.base


class TestCorpus:
    def test_open_data_style(self):
        corpus = generate_corpus(20, style="open_data", seed=0)
        assert len(corpus) == 20
        assert all(t.num_rows > 0 for t in corpus)

    def test_kaggle_style_wider(self):
        open_data = generate_corpus(15, style="open_data", seed=0)
        kaggle = generate_corpus(15, style="kaggle", seed=0)
        avg = lambda ts: sum(t.num_columns for t in ts) / len(ts)
        assert avg(kaggle) > avg(open_data)

    def test_invalid_style(self):
        with pytest.raises(ValueError):
            generate_corpus(5, style="excel")

    def test_characteristics_reports_all_fields(self):
        corpus = generate_corpus(10, seed=0)
        index = DiscoveryIndex(min_containment=0.3, seed=0).build(corpus)
        stats = corpus_characteristics(corpus, index)
        assert stats["tables"] == 10
        assert stats["columns"] > 10
        assert stats["size_bytes"] > 0
        assert stats["joinable_columns"] >= 0

    def test_characteristics_without_index(self):
        corpus = generate_corpus(5, seed=0)
        stats = corpus_characteristics(corpus)
        assert stats["joinable_columns"] == 0

    def test_joinable_structure_exists(self):
        corpus = generate_corpus(30, n_key_pools=3, seed=0)
        index = DiscoveryIndex(min_containment=0.2, seed=0).build(corpus)
        stats = corpus_characteristics(corpus, index)
        assert stats["joinable_columns"] > 0

    def test_size_sampling_matches_exact_count(self):
        corpus = generate_corpus(10, seed=0)
        exact = corpus_characteristics(corpus, size_sample=10**9)["size_bytes"]
        sampled = corpus_characteristics(corpus, size_sample=50)["size_bytes"]
        assert exact > 0
        # Evenly-spaced sampling over homogeneous synthetic columns stays
        # within a few percent of the exact cell-by-cell count.
        assert abs(sampled - exact) / exact < 0.05

    def test_size_sampling_deterministic(self):
        corpus = generate_corpus(8, seed=0)
        a = corpus_characteristics(corpus, size_sample=30)["size_bytes"]
        b = corpus_characteristics(corpus, size_sample=30)["size_bytes"]
        assert a == b

    def test_size_sample_zero_means_exact(self):
        corpus = generate_corpus(5, seed=0)
        exact = corpus_characteristics(corpus, size_sample=10**9)["size_bytes"]
        assert corpus_characteristics(corpus, size_sample=0)["size_bytes"] == exact
