"""Lease-manager semantics: fencing tokens, expiry, renewal, skew.

These are the primitives the gc-race fix rests on (see
``test_gc_race.py`` for the end-to-end schedules).
"""

import os

import pytest

from repro.catalog import CatalogStore, LocalFSBackend
from repro.catalog.leases import DEFAULT_LEASE_TTL, LeaseManager
from tests.harness.entries import make_entry


class Clock:
    def __init__(self, now=1000.0):
        self.now = float(now)

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def manager(tmp_path, clock):
    root = str(tmp_path / "store")
    return LeaseManager(LocalFSBackend(root), root, ttl=10.0, clock=clock)


class TestAcquireReleaseExpire:
    def test_acquire_makes_lease_active(self, manager):
        lease = manager.acquire()
        assert lease.token in manager.active_tokens()
        assert lease.kind == "writer"
        assert lease.expires == lease.acquired + 10.0

    def test_release_deactivates(self, manager):
        lease = manager.acquire()
        manager.release(lease)
        assert manager.active_tokens() == set()

    def test_double_release_is_harmless(self, manager):
        lease = manager.acquire()
        manager.release(lease)
        manager.release(lease)

    def test_expires_after_ttl(self, manager, clock):
        lease = manager.acquire()
        clock.now += 9.9
        assert lease.token in manager.active_tokens()
        clock.now += 0.2
        assert lease.token not in manager.active_tokens()

    def test_expired_lease_file_is_reaped(self, manager, clock, tmp_path):
        lease = manager.acquire()
        lease_dir = os.path.join(str(tmp_path / "store"), "leases")
        assert os.path.exists(
            os.path.join(lease_dir, f"{lease.owner}.json")
        )
        clock.now += 11
        manager.active()  # observes expiry, reaps the file
        assert not os.path.exists(
            os.path.join(lease_dir, f"{lease.owner}.json")
        )

    def test_corrupt_lease_file_is_ignored(self, manager, tmp_path):
        manager.acquire()
        lease_dir = os.path.join(str(tmp_path / "store"), "leases")
        with open(os.path.join(lease_dir, "junk.json"), "w") as handle:
            handle.write("{ not a lease")
        assert len(manager.active()) == 1


class TestRenewal:
    def test_renew_extends_expiry_keeps_token(self, manager, clock):
        lease = manager.acquire()
        clock.now += 8
        renewed = manager.renew(lease)
        assert renewed.token == lease.token
        assert renewed.owner == lease.owner
        clock.now += 8  # 16s after acquire, 8s after renewal
        assert renewed.token in manager.active_tokens()


class TestFencingTokens:
    def test_tokens_strictly_increase(self, manager):
        tokens = [manager.acquire().token for _ in range(5)]
        assert tokens == sorted(tokens)
        assert len(set(tokens)) == 5

    def test_tokens_never_repeat_across_managers(self, tmp_path, clock):
        """The counter is store state, not process state: a restarted
        writer can never mint a token an earlier incarnation used."""
        root = str(tmp_path / "store")
        first = LeaseManager(LocalFSBackend(root), root, ttl=10, clock=clock)
        a = first.acquire()
        first.release(a)
        second = LeaseManager(LocalFSBackend(root), root, ttl=10, clock=clock)
        b = second.acquire()
        assert b.token > a.token

    def test_active_tokens_excludes_own(self, manager):
        mine = manager.acquire()
        other = manager.acquire()
        assert manager.active_tokens(exclude=(mine,)) == {other.token}
        assert manager.active_tokens(exclude=(mine, None)) == {other.token}


class TestClockSkew:
    def test_negative_age_reads_as_fresh(self, manager, clock):
        """A reader whose clock lags the writer's sees a lease acquired
        'in the future' — the clamped age keeps it fresh for a full TTL
        from the reader's now, never instantly expired."""
        lease = manager.acquire()
        clock.now -= 100  # our clock falls behind the acquisition stamp
        assert lease.token in manager.active_tokens()
        clock.now += 100 + 9.9  # ttl not yet elapsed past the stamp
        assert lease.token in manager.active_tokens()

    def test_skew_allowance_widens_expiry(self, tmp_path, clock):
        root = str(tmp_path / "store")
        manager = LeaseManager(
            LocalFSBackend(root), root, ttl=10.0, clock_skew=5.0, clock=clock
        )
        lease = manager.acquire()
        clock.now += 12  # past ttl, inside ttl + skew
        assert lease.token in manager.active_tokens()
        clock.now += 4  # past ttl + skew
        assert lease.token not in manager.active_tokens()


class TestStoreIntegration:
    def test_write_stamps_writer_lease(self, tmp_path):
        store = CatalogStore(str(tmp_path / "cat"))
        store.write_object("fp1", {"name": "t"}, {"c": make_entry({"v"})})
        lease = store.writer_lease()
        active = store.leases.active()
        assert any(entry.token == lease.token for entry in active)
        store.release_writer_lease()
        assert store.leases.active_tokens() == set()

    def test_writer_lease_is_cached_and_renewed(self, tmp_path, monkeypatch):
        from repro.catalog import store as store_module

        store = CatalogStore(str(tmp_path / "cat"))
        first = store.writer_lease()
        assert store.writer_lease() is first  # cached, not re-acquired
        real_now = store_module._now
        monkeypatch.setattr(
            store_module,
            "_now",
            lambda: real_now() + DEFAULT_LEASE_TTL * 0.75,
        )
        renewed = store.writer_lease()
        assert renewed.token == first.token
        assert renewed.acquired > first.acquired

    def test_writer_lease_io_runs_outside_guard(self, tmp_path, monkeypatch):
        # Regression (reprolint blocking-under-lock): acquire/renew do
        # lease-file I/O through the backend, so they must never run
        # while the in-process ``_writer_lease_guard`` is held — a slow
        # disk would stall every thread calling writer_lease().
        from repro.catalog import store as store_module

        store = CatalogStore(str(tmp_path / "cat"))
        real_acquire = store.leases.acquire
        real_renew = store.leases.renew

        def checked_acquire(*args, **kwargs):
            assert not store._writer_lease_guard.locked()
            return real_acquire(*args, **kwargs)

        def checked_renew(*args, **kwargs):
            assert not store._writer_lease_guard.locked()
            return real_renew(*args, **kwargs)

        monkeypatch.setattr(store.leases, "acquire", checked_acquire)
        monkeypatch.setattr(store.leases, "renew", checked_renew)
        first = store.writer_lease()
        real_now = store_module._now
        monkeypatch.setattr(
            store_module,
            "_now",
            lambda: real_now() + DEFAULT_LEASE_TTL * 0.75,
        )
        renewed = store.writer_lease()
        assert renewed.token == first.token

    def test_writer_lease_cold_race_releases_surplus(self, tmp_path):
        # Two threads racing the first writer_lease() may both acquire;
        # the loser's lease must be released (not leaked until TTL) and
        # both callers must observe the same published lease.
        import threading

        store = CatalogStore(str(tmp_path / "cat"))
        barrier = threading.Barrier(2)
        real_acquire = store.leases.acquire

        def racing_acquire(*args, **kwargs):
            barrier.wait(timeout=5)
            return real_acquire(*args, **kwargs)

        store.leases.acquire = racing_acquire
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(store.writer_lease())
            )
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(results) == 2
        assert results[0].token == results[1].token
        active = store.leases.active()
        assert len(active) == 1
        assert active[0].token == results[0].token

    def test_lease_ttl_none_disables_leases(self, tmp_path):
        store = CatalogStore(str(tmp_path / "cat"), lease_ttl=None)
        assert store.leases is None
        assert store.writer_lease() is None
        store.write_object("fp1", {"name": "t"}, {"c": make_entry({"v"})})
        # Lease-free stores keep the legacy record shape (plain codec
        # version) — byte-identical to pre-lease layouts.
        shard_dir = store._object_shard_dir("fp1")
        record = store._read_shard_section(shard_dir, "objects")["fp1"]
        assert isinstance(record, int)
        assert not os.path.exists(os.path.join(store.root, "leases"))

    def test_stats_counts_active_leases(self, tmp_path):
        store = CatalogStore(str(tmp_path / "cat"))
        assert store.stats()["leases"] == 0
        store.write_object("fp1", {"name": "t"}, {"c": make_entry({"v"})})
        assert store.stats()["leases"] == 1
        store.release_writer_lease()
        assert store.stats()["leases"] == 0
