"""Warm-start equivalence: catalog-served discovery == cold build."""

import numpy as np
import pytest

from repro import prepare_candidates
from repro.catalog import Catalog, CatalogStore
from repro.data import housing_scenario
from repro.profiles.registry import default_registry


@pytest.fixture(scope="module")
def scenario():
    return housing_scenario(seed=0)


def build_catalog(tmp_path, scenario):
    catalog = Catalog(CatalogStore(str(tmp_path / "cat")), min_containment=0.3, seed=0)
    catalog.refresh(scenario.corpus)
    catalog.save()
    return catalog


class TestWarmStartEquivalence:
    def test_candidates_and_profiles_identical(self, tmp_path, scenario):
        cold = prepare_candidates(scenario.base, scenario.corpus, seed=0)
        build_catalog(tmp_path, scenario)

        warm_catalog = Catalog.load(str(tmp_path / "cat"), corpus=scenario.corpus)
        warm = prepare_candidates(
            scenario.base, scenario.corpus, seed=0, catalog=warm_catalog
        )
        assert warm_catalog.computed_columns == 0
        assert [c.aug_id for c in warm] == [c.aug_id for c in cold]
        assert [c.overlap for c in warm] == [c.overlap for c in cold]
        for cold_c, warm_c in zip(cold, warm, strict=True):
            assert np.array_equal(cold_c.profile_vector, warm_c.profile_vector)

    def test_second_run_hits_profile_cache(self, tmp_path, scenario):
        catalog = build_catalog(tmp_path, scenario)
        registry = default_registry()
        prepare_candidates(
            scenario.base, scenario.corpus, registry=registry, seed=0, catalog=catalog
        )
        warm_catalog = Catalog.load(str(tmp_path / "cat"), corpus=scenario.corpus)
        cache = warm_catalog.profile_cache(scenario.base, registry, seed=0)
        assert len(cache) > 0
        warm = prepare_candidates(
            scenario.base, scenario.corpus, registry=registry, seed=0,
            catalog=warm_catalog,
        )
        assert len(warm) == len(cache)

    def test_stale_table_triggers_reprofile(self, tmp_path, scenario):
        catalog = build_catalog(tmp_path, scenario)
        registry = default_registry()
        candidates = prepare_candidates(
            scenario.base, scenario.corpus, registry=registry, seed=0, catalog=catalog
        )
        touched = candidates[0].aug.final_table

        # Perturb one repository table's content.
        corpus = dict(scenario.corpus)
        changed = corpus[touched].copy()
        changed.column(changed.column_names[-1])[0] = 123456.789
        corpus[touched] = changed

        warm_catalog = Catalog.load(str(tmp_path / "cat"), corpus=corpus)
        cache = warm_catalog.profile_cache(scenario.base, registry, seed=0)
        hits_before = cache.hits
        for candidate in candidates:
            vector = cache.get(candidate)
            if candidate.aug.final_table == touched:
                assert vector is None, "stale table served a cached profile"
        assert cache.misses > 0
        assert cache.hits >= hits_before

    def test_warm_mode_persists_manifest_without_explicit_save(
        self, tmp_path, scenario
    ):
        catalog = Catalog(
            CatalogStore(str(tmp_path / "auto")), min_containment=0.3, seed=0
        )
        prepare_candidates(
            scenario.base, scenario.corpus, seed=0, catalog=catalog
        )  # no catalog.save()
        loaded = Catalog.load(str(tmp_path / "auto"))
        diff = loaded.refresh(scenario.corpus)
        assert not diff.changed  # manifest/snapshot were saved automatically

    def test_partial_corpus_does_not_shrink_saved_catalog(self, tmp_path, scenario):
        catalog = build_catalog(tmp_path, scenario)
        full = dict(scenario.corpus)
        dropped = sorted(full)[0]
        partial = {n: t for n, t in full.items() if n != dropped}
        # Warm discovery over a filtered corpus must not persist removals.
        warm_catalog = Catalog.load(str(tmp_path / "cat"))
        prepare_candidates(scenario.base, partial, seed=0, catalog=warm_catalog)
        manifest = warm_catalog.store.read_manifest()
        assert dropped in manifest["tables"]
        # Not even via a later additive run in the same process.
        grown = dict(partial)
        grown["brand_new"] = scenario.base.copy(name="brand_new")
        prepare_candidates(scenario.base, grown, seed=0, catalog=warm_catalog)
        manifest = warm_catalog.store.read_manifest()
        assert dropped in manifest["tables"]
        assert "brand_new" not in manifest["tables"]  # save was withheld
        # An explicit save persists the caller's intent, removals included.
        warm_catalog.save()
        manifest = warm_catalog.store.read_manifest()
        assert dropped not in manifest["tables"]
        assert "brand_new" in manifest["tables"]

    def test_open_warns_on_ignored_config(self, tmp_path, scenario):
        import warnings

        path = str(tmp_path / "cfg")
        Catalog.open(path, corpus=scenario.corpus, num_perm=32, bands=8).save()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reopened = Catalog.open(path, num_perm=64)
        assert reopened.config["num_perm"] == 32
        assert any("stored config" in str(w.message) for w in caught)

    def test_containment_mismatch_warns(self, tmp_path, scenario):
        import warnings

        catalog = build_catalog(tmp_path, scenario)  # min_containment=0.3
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            prepare_candidates(
                scenario.base, scenario.corpus, min_containment=0.6,
                seed=0, catalog=catalog,
            )
        assert any("min_containment" in str(w.message) for w in caught)

    def test_registry_hyperparameters_invalidate_cache(self, tmp_path, scenario):
        catalog = build_catalog(tmp_path, scenario)
        seeded_a = default_registry().with_random_profiles(2, seed=0)
        candidates = prepare_candidates(
            scenario.base, scenario.corpus, registry=seeded_a, seed=0,
            catalog=catalog,
        )
        # Same profile *names*, different hyperparameters: the cache must
        # miss, not serve the other registry's vectors.
        seeded_b = default_registry().with_random_profiles(2, seed=123)
        cache = catalog.profile_cache(scenario.base, seeded_b, seed=0)
        assert all(cache.get(c) is None for c in candidates)
        # While the identical registry config hits.
        same = default_registry().with_random_profiles(2, seed=0)
        cache = catalog.profile_cache(scenario.base, same, seed=0)
        assert all(cache.get(c) is not None for c in candidates)

    def test_changed_base_table_misses_cache(self, tmp_path, scenario):
        catalog = build_catalog(tmp_path, scenario)
        registry = default_registry()
        candidates = prepare_candidates(
            scenario.base, scenario.corpus, registry=registry, seed=0, catalog=catalog
        )
        other_base = scenario.base.with_column(
            "extra", [0.0] * scenario.base.num_rows
        )
        cache = catalog.profile_cache(other_base, registry, seed=0)
        assert all(cache.get(c) is None for c in candidates)
