"""The background refresher: snapshots, change detection, crash safety.

Covers the tentpole contract: immutable published snapshots, unchanged
cycles that leave the store byte-identical (golden), changed cycles that
re-sign exactly the changed tables off the query path, staleness
accounting, the background thread's error resilience, and a refresh
subprocess killed mid-save leaving a store that verifies.
"""

import os
import threading
import time

import pytest

from repro.catalog import (
    Catalog,
    CatalogRefresher,
    CatalogStore,
    corpus_fingerprint,
    table_fingerprint,
)
from repro.dataframe.table import Table
from tests.harness.faults import exit_hook, run_killed


def make_corpus(n=4, version=0):
    return {
        f"t{i}": Table(
            f"t{i}",
            {
                "key": [f"k{i}{j}" for j in range(4)],
                "val": [f"v{version}{i}{j}" for j in range(4)],
            },
        )
        for i in range(n)
    }


class MutableSource:
    """A corpus source the test can swap under the refresher."""

    def __init__(self, corpus):
        self.corpus = dict(corpus)

    def __call__(self):
        return self.corpus

    def replace(self, name, table):
        corpus = dict(self.corpus)
        corpus[name] = table
        self.corpus = corpus

    def drop(self, name):
        corpus = dict(self.corpus)
        del corpus[name]
        self.corpus = corpus


@pytest.fixture
def source():
    return MutableSource(make_corpus())


def store_bytes(root):
    """Byte content of every store file (the golden comparison)."""
    out = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                out[os.path.relpath(path, root)] = handle.read()
    return out


class TestCycles:
    def test_first_cycle_publishes_epoch_one(self, source, tmp_path):
        refresher = CatalogRefresher(source, store=str(tmp_path / "cat"))
        snapshot = refresher.refresh_now()
        assert snapshot.epoch == 1
        assert set(snapshot.corpus) == set(source.corpus)
        assert snapshot.fingerprints["t0"] == table_fingerprint(
            source.corpus["t0"]
        )
        assert refresher.changed_cycles == 1

    def test_unchanged_cycle_republished_same_object(self, source, tmp_path):
        refresher = CatalogRefresher(source, store=str(tmp_path / "cat"))
        first = refresher.refresh_now()
        second = refresher.refresh_now()
        assert second is first  # the very object, not an equal copy
        assert refresher.cycles == 2
        assert refresher.changed_cycles == 1

    def test_unchanged_cycle_is_byte_identical_golden(self, source, tmp_path):
        """Golden: a refresh cycle over an unchanged corpus must leave
        every store file byte-identical — no manifest rewrite, no
        snapshot repack, no spurious invalidation signal for any cache
        keyed on store content."""
        root = str(tmp_path / "cat")
        refresher = CatalogRefresher(source, store=root)
        refresher.refresh_now()
        before = store_bytes(root)
        refresher.refresh_now()
        assert store_bytes(root) == before

    def test_regenerated_identical_content_is_unchanged(self, source, tmp_path):
        """New Table objects with identical content (a re-read corpus)
        must not bump the epoch: identity misses fall back to the
        fingerprint scan, which sees equal content."""
        refresher = CatalogRefresher(source, store=str(tmp_path / "cat"))
        first = refresher.refresh_now()
        source.corpus = dict(make_corpus())  # fresh objects, same content
        second = refresher.refresh_now()
        assert second is first
        assert second.epoch == 1

    def test_changed_table_bumps_epoch_and_resigns_only_it(
        self, source, tmp_path
    ):
        root = str(tmp_path / "cat")
        refresher = CatalogRefresher(source, store=root)
        first = refresher.refresh_now()
        source.replace(
            "t1", Table("t1", {"key": ["a", "b"], "val": ["x", "y"]})
        )
        second = refresher.refresh_now()
        assert second is not first
        assert second.epoch == 2
        assert second.diff.updated == ["t1"]
        assert sorted(second.diff.unchanged) == ["t0", "t2", "t3"]
        # Only the changed table was signed from scratch; the rest
        # hydrated from the previous save.
        assert second.catalog.computed_columns == 2
        # The previous snapshot stays fully intact (immutability).
        assert first.epoch == 1
        assert set(first.corpus) == {"t0", "t1", "t2", "t3"}

    def test_removed_table_is_dropped_and_reclaimed(self, source, tmp_path):
        root = str(tmp_path / "cat")
        refresher = CatalogRefresher(source, store=root)
        refresher.refresh_now()
        dropped_fp = table_fingerprint(source.corpus["t2"])
        source.drop("t2")
        snapshot = refresher.refresh_now()
        assert snapshot.diff.removed == ["t2"]
        assert "t2" not in snapshot.corpus
        store = CatalogStore(root)
        manifest = store.read_manifest()
        assert "t2" not in manifest["tables"]
        # The object went through the tombstone-first deletion protocol.
        object_id = f"{snapshot.catalog._artifact_config}-{dropped_fp}"
        assert not store.has_object(object_id)
        assert object_id in store.list_tombstones()
        assert Catalog.load(root).verify()["problems"] == []

    def test_corpus_fingerprint_tracks_content(self, source, tmp_path):
        refresher = CatalogRefresher(source, store=str(tmp_path / "cat"))
        first = refresher.refresh_now()
        digest = first.corpus_fingerprint()
        assert digest == corpus_fingerprint(
            {name: table_fingerprint(t) for name, t in source.corpus.items()}
        )
        source.replace("t0", Table("t0", {"key": ["z"], "val": ["z"]}))
        assert refresher.refresh_now().corpus_fingerprint() != digest

    def test_storeless_refresher_works(self, source):
        refresher = CatalogRefresher(source)
        snapshot = refresher.refresh_now()
        assert snapshot.epoch == 1
        assert snapshot.catalog.store is None
        source.replace("t0", Table("t0", {"key": ["z"], "val": ["z"]}))
        assert refresher.refresh_now().epoch == 2

    def test_duplicate_names_rejected(self, tmp_path):
        tables = [Table("t", {"c": ["a"]}), Table("t", {"c": ["b"]})]
        refresher = CatalogRefresher(lambda: tables, store=str(tmp_path / "c"))
        with pytest.raises(ValueError, match="duplicate table name"):
            refresher.refresh_now()


class TestStaleness:
    def test_staleness_clock(self, source, tmp_path):
        refresher = CatalogRefresher(source, store=str(tmp_path / "cat"))
        assert refresher.staleness() == float("inf")
        refresher.refresh_now()
        assert refresher.staleness() < 5.0

    def test_ensure_fresh_serves_current_within_budget(self, source, tmp_path):
        refresher = CatalogRefresher(source, store=str(tmp_path / "cat"))
        first = refresher.refresh_now()
        cycles = refresher.cycles
        assert refresher.ensure_fresh(budget=60.0) is first
        assert refresher.cycles == cycles  # no extra cycle ran

    def test_ensure_fresh_refreshes_past_budget(self, source, tmp_path):
        refresher = CatalogRefresher(source, store=str(tmp_path / "cat"))
        refresher.refresh_now()
        time.sleep(0.05)
        snapshot = refresher.ensure_fresh(budget=0.01)
        assert refresher.cycles == 2
        assert refresher.staleness() <= 0.05 + 1.0
        assert snapshot.epoch == 1  # unchanged content, re-verified

    def test_ensure_fresh_without_snapshot_runs_first_cycle(
        self, source, tmp_path
    ):
        refresher = CatalogRefresher(source, store=str(tmp_path / "cat"))
        snapshot = refresher.ensure_fresh()
        assert snapshot is not None and snapshot.epoch == 1

    def test_interval_validated(self, source):
        with pytest.raises(ValueError, match="interval"):
            CatalogRefresher(source, interval=0)


class TestBackgroundThread:
    def test_thread_publishes_and_tracks_changes(self, source, tmp_path):
        events = []
        refresher = CatalogRefresher(
            source,
            store=str(tmp_path / "cat"),
            interval=0.02,
            on_cycle=lambda snap, changed: events.append((snap.epoch, changed)),
        )
        with refresher:
            deadline = time.monotonic() + 10
            while refresher.current() is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert refresher.current() is not None
            source.replace("t0", Table("t0", {"key": ["q"], "val": ["q"]}))
            while (
                refresher.current().epoch < 2 and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert refresher.current().epoch == 2
        assert not refresher.running
        assert (1, True) in events and (2, True) in events

    def test_source_error_keeps_last_snapshot(self, source, tmp_path):
        refresher = CatalogRefresher(
            source, store=str(tmp_path / "cat"), interval=0.02
        )
        snapshot = refresher.refresh_now()
        bomb = threading.Event()
        original = source.corpus

        def exploding():
            if bomb.is_set():
                raise RuntimeError("source down")
            return original

        refresher._source = exploding
        bomb.set()
        with pytest.raises(RuntimeError):
            refresher.refresh_now()
        assert refresher.current() is snapshot  # stale-but-available
        refresher.start()
        deadline = time.monotonic() + 10
        while refresher.errors == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        refresher.stop()
        assert refresher.errors >= 1
        assert "source down" in (refresher.stats()["last_error"] or "")
        assert refresher.current() is snapshot

    def test_restart_after_nonblocking_stop_leaves_one_loop(
        self, source, tmp_path
    ):
        """stop(wait=False) + start() must never leave the old loop
        running next to the new one (each start gets its own stop
        event; the orphan keeps observing its already-set one)."""
        refresher = CatalogRefresher(
            source, store=str(tmp_path / "cat"), interval=0.02
        )
        refresher.start()
        deadline = time.monotonic() + 10
        while refresher.current() is None and time.monotonic() < deadline:
            time.sleep(0.01)
        refresher.stop(wait=False)
        refresher.start()
        time.sleep(0.3)  # old loop (if resurrected) would still be alive
        alive = [
            t
            for t in threading.enumerate()
            if t.name == "repro-catalog-refresh"
        ]
        assert len(alive) == 1
        refresher.stop()
        assert not refresher.running

    def test_stats_shape(self, source, tmp_path):
        refresher = CatalogRefresher(source, store=str(tmp_path / "cat"))
        refresher.refresh_now()
        stats = refresher.stats()
        assert stats["epoch"] == 1
        assert stats["tables"] == 4
        assert stats["cycles"] == 1
        assert not stats["running"]


def _killed_refresh_worker(root, corpus_spec):
    """A refresh subprocess killed mid-save (between its shard-log
    append and manifest compaction) — the benchmark's crash scenario."""
    corpus = {
        name: Table(name, {"key": values}) for name, values in corpus_spec.items()
    }
    store = CatalogStore(root)
    store.fault_hook = exit_hook("shard-log-appended")
    refresher = CatalogRefresher(lambda: corpus, store=store)
    refresher.refresh_now()


class TestKilledRefreshProcess:
    def test_store_verifies_after_killed_refresh(self, tmp_path):
        root = str(tmp_path / "cat")
        base = {f"t{i}": [f"v{i}", f"w{i}"] for i in range(3)}
        seeded = CatalogRefresher(
            lambda: {n: Table(n, {"key": v}) for n, v in base.items()},
            store=root,
            num_perm=8,
            bands=4,
        )
        seeded.refresh_now()

        changed = dict(base)
        changed["t0"] = ["CHANGED", "w0"]
        run_killed(_killed_refresh_worker, (root, changed))

        # The killed cycle left a verifiable store...
        assert CatalogStore(root).verify()["problems"] == []
        assert Catalog.load(root).verify()["problems"] == []
        # ...and the next refresher finishes the job.
        recovered = CatalogRefresher(
            lambda: {n: Table(n, {"key": v}) for n, v in changed.items()},
            store=root,
        )
        snapshot = recovered.refresh_now()
        assert set(snapshot.corpus) == set(changed)
        assert Catalog.load(root).verify()["problems"] == []
