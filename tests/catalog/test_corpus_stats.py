"""Catalog-backed Table-I corpus reports: disk artifacts == in-memory."""

import pytest

from repro.catalog import Catalog, CatalogStore, CatalogStoreError
from repro.cli import main
from repro.data import corpus_characteristics, generate_corpus
from repro.discovery import DiscoveryIndex

SEED = 0
N_TABLES = 25


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(N_TABLES, style="open_data", seed=SEED)


@pytest.fixture(scope="module")
def reference(corpus):
    index = DiscoveryIndex(min_containment=0.3, seed=SEED).build(corpus)
    return corpus_characteristics(corpus, index)


def build(tmp_path, corpus):
    catalog = Catalog(CatalogStore(str(tmp_path / "cat")), min_containment=0.3,
                      seed=SEED)
    catalog.refresh({t.name: t for t in corpus})
    catalog.save()
    return catalog


class TestCorpusStatsEquality:
    def test_live_catalog_matches_in_memory(self, tmp_path, corpus, reference):
        catalog = build(tmp_path, corpus)
        assert catalog.corpus_stats() == reference

    def test_streamed_matches_in_memory_path(self, tmp_path, corpus, reference):
        # The shard-batched joinable pass (bounded resident entries) must
        # report exactly what the hold-everything pass reports, at any
        # batch size — including 1 (every cross-table check goes through
        # the LRU) and sizes larger than the catalog.
        build(tmp_path, corpus)
        loaded = Catalog.load(str(tmp_path / "cat"))
        in_memory = loaded.corpus_stats(batch_tables=None)
        assert in_memory == reference
        for batch_tables in (1, 3, N_TABLES + 10):
            assert loaded.corpus_stats(batch_tables=batch_tables) == in_memory

    def test_streamed_rejects_bad_batch_size(self, tmp_path, corpus):
        build(tmp_path, corpus)
        loaded = Catalog.load(str(tmp_path / "cat"))
        with pytest.raises(ValueError, match="batch_tables"):
            loaded.corpus_stats(batch_tables=0)

    def test_store_only_catalog_matches_in_memory(self, tmp_path, corpus, reference):
        build(tmp_path, corpus)
        # Fresh process simulation: no corpus attached at all — the
        # report runs purely from persisted artifacts.
        loaded = Catalog.load(str(tmp_path / "cat"))
        assert len(loaded.index.tables) == 0  # nothing hydrated
        assert loaded.corpus_stats() == reference
        assert loaded.computed_columns == 0  # and nothing re-signed

    def test_corpus_characteristics_routes_through_catalog(
        self, tmp_path, corpus, reference
    ):
        build(tmp_path, corpus)
        loaded = Catalog.load(str(tmp_path / "cat"))
        assert corpus_characteristics(catalog=loaded) == reference

    def test_corpus_characteristics_requires_corpus_or_catalog(self):
        with pytest.raises(ValueError):
            corpus_characteristics()


class TestJoinableCountRouting:
    def test_indexed_name_matches_live_table(self, tmp_path, corpus):
        catalog = build(tmp_path, corpus)
        for table in corpus[:5]:
            assert catalog.joinable_count(table.name) == catalog.joinable_count(
                table
            )

    def test_unknown_name_raises(self, tmp_path, corpus):
        catalog = build(tmp_path, corpus)
        with pytest.raises(KeyError):
            catalog.joinable_count("ghost")


class TestCorpusStatsRobustness:
    def test_requires_store(self):
        catalog = Catalog()
        with pytest.raises(CatalogStoreError):
            catalog.corpus_stats()

    def test_corrupt_object_heals_with_live_table(self, tmp_path, corpus, reference):
        catalog = build(tmp_path, corpus)
        victim = catalog.store.list_objects()[0]
        with open(catalog.store._object_path(victim), "w") as handle:
            handle.write("garbage")
        assert catalog.corpus_stats() == reference  # recomputed + re-persisted
        assert catalog.computed_columns > 0
        # And the healed object now serves a store-only report too.
        loaded = Catalog.load(str(tmp_path / "cat"))
        assert loaded.corpus_stats() == reference

    def test_pre_v2_objects_without_sizes_warn(self, tmp_path, corpus):
        # PR-1 era objects carry no size estimate: the store-only report
        # must say so instead of silently printing a too-small size.
        import warnings

        catalog = build(tmp_path, corpus)
        for fingerprint in catalog.store.list_objects():
            meta, entries = catalog.store.read_object(fingerprint)
            meta.pop("size_bytes", None)
            catalog.store.write_object(fingerprint, meta, entries, overwrite=True)
        loaded = Catalog.load(str(tmp_path / "cat"))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            stats = loaded.corpus_stats()
        assert stats["size_bytes"] == 0
        assert any("predate size recording" in str(w.message) for w in caught)

    def test_missing_object_without_live_table_raises(self, tmp_path, corpus):
        catalog = build(tmp_path, corpus)
        loaded = Catalog.load(str(tmp_path / "cat"))
        victim = loaded.store.list_objects()[0]
        loaded.store.delete_object(victim)
        with pytest.raises(CatalogStoreError, match="missing or corrupt"):
            loaded.corpus_stats()


class TestCorpusStatsCli:
    def test_catalog_flag_matches_generated_report(self, tmp_path, capsys):
        root = str(tmp_path / "cat")
        assert main(["catalog", "build", root, "--tables", "15",
                     "--seed", str(SEED)]) == 0
        capsys.readouterr()
        assert main(["corpus-stats", "--tables", "15", "--seed", str(SEED)]) == 0
        from_corpus = capsys.readouterr().out
        assert main(["corpus-stats", "--catalog", root]) == 0
        from_catalog = capsys.readouterr().out
        assert from_catalog == from_corpus

    def test_catalog_flag_streams_by_default_and_matches(self, tmp_path, capsys):
        root = str(tmp_path / "cat")
        assert main(["catalog", "build", root, "--tables", "15",
                     "--seed", str(SEED)]) == 0
        capsys.readouterr()
        assert main(["corpus-stats", "--catalog", root]) == 0
        streamed = capsys.readouterr().out
        assert main(["corpus-stats", "--catalog", root,
                     "--batch-tables", "0"]) == 0
        in_memory = capsys.readouterr().out
        assert streamed == in_memory

    def test_missing_catalog_errors_cleanly(self, tmp_path, capsys):
        assert main(
            ["corpus-stats", "--catalog", str(tmp_path / "nope")]
        ) == 1
        captured = capsys.readouterr()
        assert "error" in captured.err
        assert "no catalog manifest" in captured.err
