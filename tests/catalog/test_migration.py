"""Layout-v1 → v2 migration: read-through compatibility and in-place rewrite.

Builds a catalog, rewrites its store into the PR-1 era layout (version-1
manifest, flat ``objects/<fp>.json`` / ``profiles/<fp>.json``) with a
faithful old-writer reimplementation, and asserts that (a) the new code
opens it transparently with byte-identical discovery output, and (b)
``repro catalog build --migrate`` rewrites it in place to the sharded
binary layout without changing any result.
"""

import json
import os
import shutil

import numpy as np
import pytest

from repro import prepare_candidates
from repro.catalog import Catalog, CatalogStore
from repro.catalog.store import CODECS, VERSION
from repro.cli import main
from repro.data import generate_corpus
from repro.data.generator import make_keys
from repro.dataframe.table import Table

SEED = 0
N_TABLES = 12


def base_table(n_rows=120, n_pools=4):
    rng = np.random.default_rng(SEED)
    columns = {
        f"key_{p}": make_keys(n_rows, prefix=f"k{p}_", start=0)
        for p in range(n_pools)
    }
    columns["signal"] = rng.normal(size=n_rows).tolist()
    return Table("mig_base", columns)


def downgrade_to_v1(store: CatalogStore) -> None:
    """Rewrite a v2 store as the version-1 flat layout (the old writer):
    flat JSON objects and profile groups, a version-1 manifest, no shard
    directories.  The snapshot format never changed, so it stays."""
    for fingerprint in store.list_objects():
        meta, entries = store.read_object(fingerprint)
        with open(store._legacy_object_path(fingerprint), "wb") as handle:
            handle.write(CODECS[1].encode(meta, entries))
    for group in store.list_profile_groups():
        entries = store.read_profiles(group)
        payload = {
            "entries": {
                key: [float(x) for x in np.asarray(vector).tolist()]
                for key, vector in sorted(entries.items())
            }
        }
        with open(store._legacy_profile_path(group), "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
    for section in ("objects", "profiles"):
        directory = os.path.join(store.root, section)
        for name in os.listdir(directory):
            path = os.path.join(directory, name)
            if os.path.isdir(path):
                shutil.rmtree(path)
    manifest = json.load(open(store.manifest_path))
    manifest["version"] = 1
    json.dump(manifest, open(store.manifest_path, "w"), indent=1, sort_keys=True)


def flat_files(store: CatalogStore, section: str) -> list:
    directory = os.path.join(store.root, section)
    if not os.path.isdir(directory):
        return []
    return sorted(
        name for name in os.listdir(directory)
        if os.path.isfile(os.path.join(directory, name))
    )


@pytest.fixture
def v1_catalog(tmp_path):
    """A catalog dir in v1 layout + the corpus and cold reference output."""
    root = str(tmp_path / "cat")
    assert main(["catalog", "build", root, "--tables", str(N_TABLES),
                 "--seed", str(SEED)]) == 0
    corpus_list = generate_corpus(N_TABLES, style="open_data", seed=SEED)
    corpus = {t.name: t for t in corpus_list}
    base = base_table()
    cold = prepare_candidates(base, corpus, seed=SEED)
    # Populate the profile cache through a warm run, then downgrade.
    warm = Catalog.load(root, corpus=corpus)
    prepare_candidates(base, corpus, seed=SEED, catalog=warm)
    downgrade_to_v1(CatalogStore(root))
    return root, corpus, base, cold


def assert_same_candidates(cold, warm):
    assert [c.aug_id for c in warm] == [c.aug_id for c in cold]
    assert [c.overlap for c in warm] == [c.overlap for c in cold]
    for cold_c, warm_c in zip(cold, warm, strict=True):
        assert np.array_equal(cold_c.profile_vector, warm_c.profile_vector)


class TestReadThrough:
    def test_v1_store_opens_with_identical_output(self, v1_catalog):
        root, corpus, base, cold = v1_catalog
        store = CatalogStore(root)
        assert store.read_manifest()["version"] == 1
        assert flat_files(store, "objects")  # really is the flat layout

        catalog = Catalog.load(root, corpus=corpus)
        assert catalog.computed_columns == 0, "v1 store was re-signed"
        warm = prepare_candidates(base, corpus, seed=SEED, catalog=catalog)
        assert_same_candidates(cold, warm)

    def test_v1_profile_groups_served(self, v1_catalog):
        root, corpus, base, _cold = v1_catalog
        from repro.profiles.registry import default_registry

        catalog = Catalog.load(root, corpus=corpus)
        cache = catalog.profile_cache(base, default_registry(), seed=SEED)
        assert len(cache) > 0  # flat JSON groups are read through


class TestMigrateCli:
    def test_build_migrate_rewrites_in_place(self, v1_catalog, capsys):
        root, corpus, base, cold = v1_catalog
        assert main(["catalog", "build", root, "--tables", str(N_TABLES),
                     "--seed", str(SEED), "--migrate"]) == 0
        out = capsys.readouterr().out
        assert "migrated" in out
        assert "0 columns signed" in out  # migration never re-signs

        store = CatalogStore(root)
        assert store.read_manifest()["version"] == VERSION
        assert flat_files(store, "objects") == []  # no flat objects remain
        assert flat_files(store, "profiles") == []
        assert len(store.list_objects()) == N_TABLES
        for fingerprint in store.list_objects():
            assert os.path.exists(store._object_path(fingerprint))  # .bin

        catalog = Catalog.load(root, corpus=corpus)
        assert catalog.computed_columns == 0
        warm = prepare_candidates(base, corpus, seed=SEED, catalog=catalog)
        assert_same_candidates(cold, warm)

    def test_migrate_is_idempotent(self, v1_catalog):
        root, _corpus, _base, _cold = v1_catalog
        store = CatalogStore(root)
        first = store.migrate()
        assert first["objects"] == N_TABLES
        assert first["profiles"] >= 1
        assert store.migrate() == {"objects": 0, "profiles": 0}

    def test_migrate_cleans_superseded_legacy_duplicates(self, v1_catalog):
        # Crash window inside write_object: the .bin landed but the
        # legacy flat file was never removed.  A migrate re-run must
        # finish that cleanup even though nothing needs re-encoding.
        root, _corpus, _base, _cold = v1_catalog
        store = CatalogStore(root)
        store.migrate()
        fingerprint = store.list_objects()[0]
        meta, entries = store.read_object(fingerprint)
        with open(store._legacy_object_path(fingerprint), "wb") as handle:
            handle.write(CODECS[1].encode(meta, entries))
        assert store.migrate() == {"objects": 0, "profiles": 0}
        assert not os.path.exists(store._legacy_object_path(fingerprint))

    def test_interrupted_migration_still_serves_everything(self, v1_catalog):
        # Simulate a crash mid-migration: only some objects moved.  Both
        # layouts coexist; every object stays readable and a re-run
        # finishes the job.
        root, corpus, base, cold = v1_catalog
        store = CatalogStore(root)
        moved = 0
        for fingerprint in store.list_objects():
            if moved >= N_TABLES // 2:
                break
            meta, entries = store.read_object(fingerprint)
            store.write_object(fingerprint, meta, entries, overwrite=True)
            moved += 1
        catalog = Catalog.load(root, corpus=corpus)
        warm = prepare_candidates(base, corpus, seed=SEED, catalog=catalog)
        assert_same_candidates(cold, warm)
        remaining = store.migrate()
        assert remaining["objects"] == N_TABLES - moved
        assert flat_files(store, "objects") == []
