"""Tests for the content-addressed catalog store."""

import os

import numpy as np
import pytest

from repro.catalog import CatalogStore, table_fingerprint
from repro.catalog.store import VERSION, CatalogStoreError
from repro.dataframe.table import Table
from repro.discovery.index import ColumnEntry


def make_entry(values, num_perm=8):
    from repro.discovery.minhash import MinHasher

    distinct = frozenset(values)
    return ColumnEntry(
        distinct=distinct,
        normalized=frozenset(v.strip().lower() for v in distinct),
        signature=MinHasher(num_perm=num_perm).signature(distinct),
    )


@pytest.fixture
def store(tmp_path):
    return CatalogStore(str(tmp_path / "cat"))


class TestFingerprint:
    def test_deterministic(self):
        a = Table("t", {"x": [1, 2], "y": ["a", None]})
        b = Table("t", {"x": [1, 2], "y": ["a", None]})
        assert table_fingerprint(a) == table_fingerprint(b)

    def test_sensitive_to_content_name_and_type(self):
        base = Table("t", {"x": [1, 2]})
        assert table_fingerprint(base) != table_fingerprint(Table("t", {"x": [1, 3]}))
        assert table_fingerprint(base) != table_fingerprint(Table("u", {"x": [1, 2]}))
        assert table_fingerprint(base) != table_fingerprint(Table("t", {"x": ["1", "2"]}))
        assert table_fingerprint(base) != table_fingerprint(Table("t", {"x": [1.0, 2.0]}))

    def test_sensitive_to_column_rename(self):
        assert table_fingerprint(Table("t", {"x": [1]})) != table_fingerprint(
            Table("t", {"y": [1]})
        )


class TestObjects:
    def test_entries_hashable(self):
        a, b = make_entry({"a", "b"}), make_entry({"a", "b"})
        assert a == b
        assert len({a, b}) == 1

    def test_roundtrip(self, store):
        entries = {"c1": make_entry({"a", "b"}), "c2": make_entry({"X ", "y"})}
        store.write_object("fp1", {"name": "t"}, entries)
        meta, loaded = store.read_object("fp1")
        assert meta == {"name": "t"}
        assert loaded == entries
        assert loaded["c2"].normalized == frozenset({"x", "y"})

    def test_missing_object_raises(self, store):
        with pytest.raises(KeyError):
            store.read_object("nope")

    def test_gc_keeps_live(self, store):
        store.write_object("live", {}, {"c": make_entry({"a"})})
        store.write_object("dead", {}, {"c": make_entry({"b"})})
        assert store.gc(["live"]) == 1
        assert store.list_objects() == ["live"]


class TestManifest:
    def test_roundtrip(self, store):
        assert store.read_manifest() is None
        store.write_manifest({"num_perm": 8}, {"t": "fp"})
        manifest = store.read_manifest()
        assert manifest["version"] == VERSION
        assert manifest["config"] == {"num_perm": 8}
        assert manifest["tables"] == {"t": "fp"}

    def test_version_mismatch_rejected(self, store, tmp_path):
        store.write_manifest({}, {})
        import json

        payload = json.load(open(store.manifest_path))
        payload["version"] = 99
        json.dump(payload, open(store.manifest_path, "w"))
        with pytest.raises(CatalogStoreError):
            store.read_manifest()


class TestSnapshot:
    def test_roundtrip(self, store):
        rows = [
            ("t1", "fp1", "a", np.arange(8, dtype=np.uint64)),
            ("t1", "fp1", "b", np.arange(8, 16, dtype=np.uint64)),
            ("t2", "fp2", "a", np.arange(16, 24, dtype=np.uint64)),
        ]
        store.write_snapshot(rows)
        snap = store.read_snapshot()
        assert set(snap) == {"t1", "t2"}
        fingerprint, signatures = snap["t1"]
        assert fingerprint == "fp1"
        assert np.array_equal(signatures["b"], rows[1][3])

    def test_absent_snapshot_is_none(self, store):
        assert store.read_snapshot() is None

    def test_corrupt_snapshot_treated_as_absent(self, store):
        import os

        os.makedirs(store.root, exist_ok=True)
        with open(store.snapshot_path, "wb") as handle:
            handle.write(b"not an npz file")
        assert store.read_snapshot() is None

    def test_corrupt_object_raises_store_error(self, store):
        store.write_object("fp", {}, {"c": make_entry({"a"})})
        path = store._object_path("fp")
        with open(path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(CatalogStoreError):
            store.read_object("fp")
        with open(path, "w") as handle:
            handle.write('{"meta": {}, "columns": {"c": {}}}')
        with pytest.raises(CatalogStoreError):
            store.read_object("fp")
        # JSON-valid but wrong-typed signature data is corruption too.
        with open(path, "w") as handle:
            handle.write(
                '{"meta": {}, "columns": {"c": {"distinct": [],'
                ' "signature": ["abc"]}}}'
            )
        with pytest.raises(CatalogStoreError):
            store.read_object("fp")


class TestProfiles:
    def test_roundtrip_and_overwrite(self, store):
        store.write_profiles("base", {"k1": np.array([0.1, 0.9])})
        loaded = store.read_profiles("base")
        assert np.allclose(loaded["k1"], [0.1, 0.9])
        store.write_profiles("base", {**loaded, "k2": np.array([0.5])})
        assert set(store.read_profiles("base")) == {"k1", "k2"}

    def test_unknown_base_is_empty(self, store):
        assert store.read_profiles("missing") == {}

    def test_corrupt_profiles_degrade_to_empty(self, store):
        store.write_profiles("base", {"k": np.array([0.5])})
        with open(store._profile_path("base"), "w") as handle:
            handle.write("{broken")
        assert store.read_profiles("base") == {}
        with open(store._profile_path("base"), "w") as handle:
            handle.write('{"entries": {"k": ["abc"]}}')
        assert store.read_profiles("base") == {}
        # And the next flush repairs the file.
        store.write_profiles("base", {"k2": np.array([0.7])})
        assert set(store.read_profiles("base")) == {"k2"}


class TestStats:
    def test_counts_and_footprint(self, store):
        store.write_manifest({"num_perm": 8}, {"t": "fp"})
        store.write_object("fp", {}, {"c": make_entry({"a"})})
        store.write_profiles("base", {"k": np.array([0.5])})
        stats = store.stats()
        assert stats["tables"] == 1
        assert stats["objects"] == 1
        assert stats["profile_entries"] == 1
        assert stats["disk_bytes"] > 0
        assert os.path.isdir(store.root)
