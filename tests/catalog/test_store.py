"""Tests for the content-addressed catalog store."""

import json
import os

import numpy as np
import pytest

from repro.catalog import CatalogStore, table_fingerprint
from repro.catalog import store as store_module
from repro.catalog.fingerprint import shard_of
from repro.catalog.store import CODECS, VERSION, CatalogStoreError
from repro.dataframe.table import Table
from repro.discovery.index import ColumnEntry


def make_entry(values, num_perm=8):
    from repro.discovery.minhash import MinHasher

    distinct = frozenset(values)
    return ColumnEntry(
        distinct=distinct,
        normalized=frozenset(v.strip().lower() for v in distinct),
        signature=MinHasher(num_perm=num_perm).signature(distinct),
    )


@pytest.fixture
def store(tmp_path):
    return CatalogStore(str(tmp_path / "cat"))


class TestFingerprint:
    def test_deterministic(self):
        a = Table("t", {"x": [1, 2], "y": ["a", None]})
        b = Table("t", {"x": [1, 2], "y": ["a", None]})
        assert table_fingerprint(a) == table_fingerprint(b)

    def test_sensitive_to_content_name_and_type(self):
        base = Table("t", {"x": [1, 2]})
        assert table_fingerprint(base) != table_fingerprint(Table("t", {"x": [1, 3]}))
        assert table_fingerprint(base) != table_fingerprint(Table("u", {"x": [1, 2]}))
        assert table_fingerprint(base) != table_fingerprint(Table("t", {"x": ["1", "2"]}))
        assert table_fingerprint(base) != table_fingerprint(Table("t", {"x": [1.0, 2.0]}))

    def test_sensitive_to_column_rename(self):
        assert table_fingerprint(Table("t", {"x": [1]})) != table_fingerprint(
            Table("t", {"y": [1]})
        )


class TestObjects:
    def test_entries_hashable(self):
        a, b = make_entry({"a", "b"}), make_entry({"a", "b"})
        assert a == b
        assert len({a, b}) == 1

    def test_roundtrip(self, store):
        entries = {"c1": make_entry({"a", "b"}), "c2": make_entry({"X ", "y"})}
        store.write_object("fp1", {"name": "t"}, entries)
        meta, loaded = store.read_object("fp1")
        assert meta == {"name": "t"}
        assert loaded == entries
        assert loaded["c2"].normalized == frozenset({"x", "y"})

    def test_missing_object_raises(self, store):
        with pytest.raises(KeyError):
            store.read_object("nope")

    def test_gc_keeps_live(self, store):
        store.write_object("live", {}, {"c": make_entry({"a"})})
        store.write_object("dead", {}, {"c": make_entry({"b"})})
        assert store.gc(["live"]) == 1
        assert store.list_objects() == ["live"]


class TestManifest:
    def test_roundtrip(self, store):
        assert store.read_manifest() is None
        store.write_manifest({"num_perm": 8}, {"t": "fp"})
        manifest = store.read_manifest()
        assert manifest["version"] == VERSION
        assert manifest["config"] == {"num_perm": 8}
        assert manifest["tables"] == {"t": "fp"}

    def test_version_mismatch_rejected(self, store, tmp_path):
        store.write_manifest({}, {})
        import json

        payload = json.load(open(store.manifest_path))
        payload["version"] = 99
        json.dump(payload, open(store.manifest_path, "w"))
        with pytest.raises(CatalogStoreError):
            store.read_manifest()


class TestSnapshot:
    def test_roundtrip(self, store):
        rows = [
            ("t1", "fp1", "a", np.arange(8, dtype=np.uint64)),
            ("t1", "fp1", "b", np.arange(8, 16, dtype=np.uint64)),
            ("t2", "fp2", "a", np.arange(16, 24, dtype=np.uint64)),
        ]
        store.write_snapshot(rows)
        snap = store.read_snapshot()
        assert set(snap) == {"t1", "t2"}
        fingerprint, signatures = snap["t1"]
        assert fingerprint == "fp1"
        assert np.array_equal(signatures["b"], rows[1][3])

    def test_absent_snapshot_is_none(self, store):
        assert store.read_snapshot() is None

    def test_corrupt_snapshot_treated_as_absent(self, store):
        import os

        os.makedirs(store.root, exist_ok=True)
        with open(store.snapshot_path, "wb") as handle:
            handle.write(b"not an npz file")
        assert store.read_snapshot() is None

    def test_corrupt_object_raises_store_error(self, store):
        store.write_object("fp", {}, {"c": make_entry({"a"})})
        path = store._object_path("fp")
        with open(path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(CatalogStoreError):
            store.read_object("fp")
        with open(path, "w") as handle:
            handle.write('{"meta": {}, "columns": {"c": {}}}')
        with pytest.raises(CatalogStoreError):
            store.read_object("fp")
        # JSON-valid but wrong-typed signature data is corruption too.
        with open(path, "w") as handle:
            handle.write(
                '{"meta": {}, "columns": {"c": {"distinct": [],'
                ' "signature": ["abc"]}}}'
            )
        with pytest.raises(CatalogStoreError):
            store.read_object("fp")


class TestProfiles:
    def test_roundtrip_and_overwrite(self, store):
        store.write_profiles("base", {"k1": np.array([0.1, 0.9])})
        loaded = store.read_profiles("base")
        assert np.allclose(loaded["k1"], [0.1, 0.9])
        store.write_profiles("base", {**loaded, "k2": np.array([0.5])})
        assert set(store.read_profiles("base")) == {"k1", "k2"}

    def test_unknown_base_is_empty(self, store):
        assert store.read_profiles("missing") == {}

    def test_corrupt_profiles_degrade_to_empty(self, store):
        store.write_profiles("base", {"k": np.array([0.5])})
        with open(store._profile_path("base"), "w") as handle:
            handle.write("{broken")
        assert store.read_profiles("base") == {}
        with open(store._profile_path("base"), "w") as handle:
            handle.write('{"entries": {"k": ["abc"]}}')
        assert store.read_profiles("base") == {}
        # And the next flush repairs the file.
        store.write_profiles("base", {"k2": np.array([0.7])})
        assert set(store.read_profiles("base")) == {"k2"}


class TestStats:
    def test_counts_and_footprint(self, store):
        store.write_manifest({"num_perm": 8}, {"t": "fp"})
        store.write_object("fp", {}, {"c": make_entry({"a"})})
        store.write_profiles("base", {"k": np.array([0.5])})
        stats = store.stats()
        assert stats["version"] == VERSION
        assert stats["tables"] == 1
        assert stats["objects"] == 1
        assert stats["profile_entries"] == 1
        assert stats["profile_bytes"] > 0
        assert stats["disk_bytes"] > 0
        assert os.path.isdir(store.root)


class TestShardedLayout:
    def test_objects_land_in_hash_prefix_directories(self, store):
        store.write_object("someid", {}, {"c": make_entry({"a"})})
        shard = shard_of("someid")
        assert len(shard) == 2
        path = os.path.join(store.root, "objects", shard, "someid.bin")
        assert os.path.exists(path)
        assert store._object_path("someid") == path
        # And the shard manifest records the codec that wrote it (the
        # record also carries the writer's lease token when leases are on).
        manifest = store._read_shard_manifest(os.path.dirname(path))
        record = manifest["objects"]["someid"]
        assert store_module._record_codec(record) == CODECS[2].version
        assert store_module._record_lease(record) is not None

    def test_shards_spread_across_directories(self, store):
        for i in range(64):
            store.write_object(f"fp{i:03d}", {}, {"c": make_entry({str(i)})})
        objects_dir = os.path.join(store.root, "objects")
        shards = [d for d in os.listdir(objects_dir)
                  if os.path.isdir(os.path.join(objects_dir, d))]
        assert len(shards) > 10  # 64 keys over 256 shards: heavy reuse is a bug
        assert sorted(store.list_objects()) == [f"fp{i:03d}" for i in range(64)]

    def test_delete_object_cleans_shard_manifest(self, store):
        store.write_object("gone", {}, {"c": make_entry({"a"})})
        shard_dir = os.path.dirname(store._object_path("gone"))
        store.delete_object("gone")
        assert not store.has_object("gone")
        assert "gone" not in store._read_shard_manifest(shard_dir).get("objects", {})

    def test_profiles_land_in_hash_prefix_directories(self, store):
        store.write_profiles("basefp", {"k": np.array([0.5])})
        path = os.path.join(
            store.root, "profiles", shard_of("basefp"), "basefp.npz"
        )
        assert os.path.exists(path)
        assert store.list_profile_groups() == ["basefp"]


class TestShardManifestHealing:
    def test_stale_manifest_claiming_missing_file(self, store):
        # The manifest says the object exists, but the file vanished:
        # reads report a clean miss (KeyError → caller recomputes), never
        # crash or serve something else.
        store.write_object("fp", {}, {"c": make_entry({"a"})})
        os.remove(store._object_path("fp"))
        assert not store.has_object("fp")
        with pytest.raises(KeyError):
            store.read_object("fp")
        # A rewrite heals both the file and the bookkeeping.
        store.write_object("fp", {}, {"c": make_entry({"a"})}, overwrite=True)
        assert store.read_object("fp")[1]["c"] == make_entry({"a"})

    def test_stale_manifest_recording_wrong_codec(self, store):
        store.write_object("fp", {"m": 1}, {"c": make_entry({"a"})})
        shard_dir = os.path.dirname(store._object_path("fp"))
        manifest_path = os.path.join(shard_dir, "manifest.json")
        payload = json.load(open(manifest_path))
        payload["objects"]["fp"] = 1  # lies: the file on disk is binary
        json.dump(payload, open(manifest_path, "w"))
        meta, entries = store.read_object("fp")  # probing finds the truth
        assert meta == {"m": 1}
        assert entries["c"] == make_entry({"a"})

    def test_corrupt_shard_manifest_degrades_to_probing(self, store):
        store.write_object("fp", {}, {"c": make_entry({"a"})})
        shard_dir = os.path.dirname(store._object_path("fp"))
        with open(os.path.join(shard_dir, "manifest.json"), "w") as handle:
            handle.write("{not json")
        assert store.has_object("fp")
        assert store.read_object("fp")[1]["c"] == make_entry({"a"})
        # The next write rebuilds the manifest from scratch.
        store.write_object("fp2", {}, {"c": make_entry({"b"})})
        rebuilt = store._read_shard_manifest(shard_dir)
        if shard_of("fp2") == shard_of("fp"):
            assert "fp2" in rebuilt["objects"]

    def test_wrong_typed_manifest_section_degrades_not_crashes(self, store):
        # JSON-valid but wrong-typed sections ({"objects": []}) are
        # corruption too: reads degrade to probing and writes replace
        # the section, never AttributeError/TypeError.
        store.write_object("fp", {"m": 1}, {"c": make_entry({"a"})})
        shard_dir = os.path.dirname(store._object_path("fp"))
        with open(os.path.join(shard_dir, "manifest.json"), "w") as handle:
            json.dump({"objects": []}, handle)
        assert store.has_object("fp")
        assert store.read_object("fp")[0] == {"m": 1}
        store.write_object("fp2", {}, {"c": make_entry({"b"})}, overwrite=True)
        assert store.read_object("fp2")[1]["c"] == make_entry({"b"})

    def test_wrong_typed_profile_section_keeps_cache_served(self, store):
        store.write_profiles("base1", {"k": np.array([0.5, 0.25])})
        shard_dir = store._profile_shard_dir("base1")
        with open(os.path.join(shard_dir, "manifest.json"), "w") as handle:
            json.dump({"groups": []}, handle)
        # The healthy .npz must still be served (and re-touched), not
        # discarded because LRU bookkeeping was corrupt.
        loaded = store.read_profiles("base1")
        assert np.allclose(loaded["k"], [0.5, 0.25])
        rebuilt = store._read_shard_section(shard_dir, "groups")
        assert "base1" in rebuilt  # touch repaired the section

    def test_truncated_binary_object_raises_store_error(self, store):
        store.write_object("fp", {}, {"c": make_entry({"a", "b", "c"})})
        path = store._object_path("fp")
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(CatalogStoreError):
            store.read_object("fp")


class TestReadObjectMeta:
    def test_meta_matches_full_read(self, store):
        meta = {"name": "t", "num_rows": 3, "size_bytes": 99}
        store.write_object("fp", meta, {"c": make_entry({"a"})})
        assert store.read_object_meta("fp") == meta
        assert store.read_object("fp")[0] == meta

    def test_missing_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.read_object_meta("nope")


class TestLegacyLayoutReadThrough:
    def write_v1_object(self, store, fingerprint, meta, entries):
        os.makedirs(os.path.join(store.root, "objects"), exist_ok=True)
        with open(store._legacy_object_path(fingerprint), "wb") as handle:
            handle.write(CODECS[1].encode(meta, entries))

    def test_flat_v1_object_readable(self, store):
        # Real v1 stores only ever held fingerprint-shaped stems;
        # list_objects now filters to that shape (stray-file fix).
        fp = "deadbeefcafe0123"
        entries = {"c": make_entry({"a", "B "})}
        self.write_v1_object(store, fp, {"name": "t"}, entries)
        assert store.has_object(fp)
        assert fp in store.list_objects()
        meta, loaded = store.read_object(fp)
        assert meta == {"name": "t"}
        assert loaded == entries

    def test_stray_json_in_objects_root_is_ignored(self, store):
        # Satellite fix: a non-object *.json planted in the objects root
        # (editor droppings, notes, a copied manifest) must never be
        # reported as a fingerprint — gc would "delete" it.
        os.makedirs(os.path.join(store.root, "objects"), exist_ok=True)
        stray = os.path.join(store.root, "objects", "NOTES.json")
        with open(stray, "w") as handle:
            json.dump({"scratch": True}, handle)
        assert store.list_objects() == []
        store.gc([])
        assert os.path.exists(stray)

    def test_write_supersedes_flat_v1_object(self, store):
        self.write_v1_object(store, "fp", {"name": "old"}, {"c": make_entry({"a"})})
        store.write_object("fp", {"name": "new"}, {"c": make_entry({"a"})},
                           overwrite=True)
        assert not os.path.exists(store._legacy_object_path("fp"))
        assert store.read_object("fp")[0] == {"name": "new"}

    def test_flat_v1_profiles_readable(self, store):
        os.makedirs(os.path.join(store.root, "profiles"), exist_ok=True)
        with open(store._legacy_profile_path("base"), "w") as handle:
            json.dump({"entries": {"k": [0.25, 0.75]}}, handle)
        loaded = store.read_profiles("base")
        assert np.allclose(loaded["k"], [0.25, 0.75])
        assert store.list_profile_groups() == ["base"]
        # The next flush migrates the group to the sharded layout.
        store.write_profiles("base", loaded)
        assert not os.path.exists(store._legacy_profile_path("base"))
        assert os.path.exists(store._profile_path("base"))


class TestProfileEviction:
    def clock(self, monkeypatch):
        import repro.catalog.store as store_module

        ticks = iter(range(1, 10_000))
        monkeypatch.setattr(store_module, "_now", lambda: float(next(ticks)))

    def test_budget_enforced_on_write_evicts_lru(self, tmp_path, monkeypatch):
        self.clock(monkeypatch)
        store = CatalogStore(str(tmp_path / "cat"), profile_budget_bytes=1)
        vector = np.arange(64, dtype=float)
        store.write_profiles("a", {"k": vector})  # t=1
        store.write_profiles("b", {"k": vector})  # t=2 → evicts a, keeps b
        assert store.list_profile_groups() == ["b"]
        store.write_profiles("c", {"k": vector})  # t=3 → evicts b, keeps c
        assert store.list_profile_groups() == ["c"]

    def test_reads_refresh_lru_position(self, tmp_path, monkeypatch):
        self.clock(monkeypatch)
        store = CatalogStore(str(tmp_path / "cat"))
        vector = np.arange(64, dtype=float)
        store.write_profiles("a", {"k": vector})  # t=1
        store.write_profiles("b", {"k": vector})  # t=2
        assert store.read_profiles("a")  # t=3: a is now the hottest
        evicted, freed = store.evict_profiles(_group_bytes(store, "a"))
        assert evicted == 1
        assert freed > 0
        assert store.list_profile_groups() == ["a"]

    def test_writer_never_evicts_its_own_group(self, tmp_path, monkeypatch):
        self.clock(monkeypatch)
        store = CatalogStore(str(tmp_path / "cat"), profile_budget_bytes=0)
        store.write_profiles("only", {"k": np.array([1.0])})
        # Budget 0 can never fit the group, but the just-written group
        # must survive its own flush.
        assert store.list_profile_groups() == ["only"]

    def test_within_budget_evicts_nothing(self, tmp_path, monkeypatch):
        self.clock(monkeypatch)
        store = CatalogStore(str(tmp_path / "cat"))
        store.write_profiles("a", {"k": np.array([1.0])})
        assert store.evict_profiles(10**9) == (0, 0)
        assert store.profile_bytes() > 0

    def test_eviction_survives_manifest_loss(self, tmp_path, monkeypatch):
        self.clock(monkeypatch)
        store = CatalogStore(str(tmp_path / "cat"))
        vector = np.arange(8, dtype=float)
        store.write_profiles("a", {"k": vector})
        store.write_profiles("b", {"k": vector})
        for group in ("a", "b"):
            manifest = os.path.join(
                store._profile_shard_dir(group), "manifest.json"
            )
            if os.path.exists(manifest):
                os.remove(manifest)
        # Bookkeeping gone: eviction heals from file mtimes/sizes and
        # still enforces the budget instead of crashing.
        evicted, _freed = store.evict_profiles(0)
        assert evicted == 2
        assert store.list_profile_groups() == []

    def test_evicts_legacy_flat_groups_too(self, tmp_path, monkeypatch):
        self.clock(monkeypatch)
        store = CatalogStore(str(tmp_path / "cat"))
        os.makedirs(os.path.join(store.root, "profiles"), exist_ok=True)
        with open(store._legacy_profile_path("old"), "w") as handle:
            json.dump({"entries": {"k": [0.5]}}, handle)
        evicted, _freed = store.evict_profiles(0)
        assert evicted == 1
        assert store.list_profile_groups() == []


def _group_bytes(store, base_fingerprint):
    return os.path.getsize(store._profile_path(base_fingerprint))


class TestEvictionVanishedFileRace:
    """A file deleted between the directory listing and the mtime stat
    (a concurrent eviction or gc) is skipped, never a crash — the
    satellite regression for the mtime-ordered fallback paths."""

    def _vanish_on_listing(self, store, monkeypatch, doomed_path):
        real_listdir = store.backend.listdir

        def listing(path):
            names = real_listdir(path)
            if os.path.basename(doomed_path) in names and os.path.exists(
                doomed_path
            ):
                os.remove(doomed_path)
            return names

        monkeypatch.setattr(store.backend, "listdir", listing)

    def test_sharded_profile_ghost_skipped(self, store, monkeypatch):
        store.write_profiles("aaaa1111", {"k": np.array([0.5])})
        # An unbookkept group (no manifest entry → mtime fallback) that
        # vanishes mid-inventory.
        ghost_path = store._profile_path("bbbb2222")
        os.makedirs(os.path.dirname(ghost_path), exist_ok=True)
        with open(ghost_path, "wb") as handle:
            handle.write(b"stale npz bytes")
        self._vanish_on_listing(store, monkeypatch, ghost_path)
        evicted, _freed = store.evict_profiles(0)
        assert evicted == 1  # the real group; the ghost neither
        assert store.list_profile_groups() == []  # crashed nor counted

    def test_legacy_flat_profile_ghost_skipped(self, store, monkeypatch):
        store.write_profiles("aaaa1111", {"k": np.array([0.5])})
        os.makedirs(os.path.join(store.root, "profiles"), exist_ok=True)
        ghost_path = store._legacy_profile_path("oldghost")
        with open(ghost_path, "w") as handle:
            json.dump({"entries": {"k": [0.5]}}, handle)
        self._vanish_on_listing(store, monkeypatch, ghost_path)
        evicted, _freed = store.evict_profiles(0)
        assert evicted == 1

    def test_result_ghost_skipped(self, store, monkeypatch):
        store.write_result("cafe0001", {"run": 1})
        ghost_path = store._result_path("dead0002")
        os.makedirs(os.path.dirname(ghost_path), exist_ok=True)
        with open(ghost_path, "w") as handle:
            json.dump({"run": 2}, handle)
        self._vanish_on_listing(store, monkeypatch, ghost_path)
        evicted, _freed = store.evict_results(0)
        assert evicted == 1
