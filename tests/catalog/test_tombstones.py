"""Tombstone-safe deletions: the store's first-class removal protocol.

``delete_object`` appends ``{del objects, set tombstone}`` as one atomic
log record pair *before* removing any file, all under the shard lock —
so any interleaving of add/remove/compact deltas (threads, processes, or
crashes at any protocol point) replays to the same live-object set, and
the store verifies after every prefix of the log.
"""

import os

import pytest

from repro.catalog import Catalog, CatalogStore
from repro.catalog import store as store_module
from repro.dataframe.table import Table
from tests.harness.entries import make_entry, same_shard_fingerprints
from tests.harness.faults import (
    InjectedCrash,
    crash_at,
    exit_hook,
    run_killed,
    run_ok,
    torn_log,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@pytest.fixture
def store(tmp_path):
    return CatalogStore(str(tmp_path / "cat"))


def write(store, fingerprint):
    store.write_object(
        fingerprint, {"name": fingerprint}, {"c": make_entry({fingerprint})}
    )


class TestDeleteProtocol:
    def test_delete_removes_and_tombstones(self, store):
        fp = same_shard_fingerprints(1)[0]
        write(store, fp)
        store.delete_object(fp)
        assert not store.has_object(fp)
        assert store.list_objects() == []
        assert fp in store.list_tombstones()
        shard_dir = store._object_shard_dir(fp)
        assert fp not in store._read_shard_section(shard_dir, "objects")
        assert store.verify()["problems"] == []

    def test_delete_of_absent_leaves_no_tombstone(self, store):
        store.delete_object("never-written")
        assert store.list_tombstones() == {}

    def test_write_after_delete_clears_tombstone(self, store):
        fp = same_shard_fingerprints(1)[0]
        write(store, fp)
        store.delete_object(fp)
        write(store, fp)
        assert store.has_object(fp)
        assert fp not in store.list_tombstones()
        assert store.verify()["problems"] == []

    def test_delete_write_delete_converges(self, store):
        """Any add/remove interleaving ends in the last operation's
        state, never a mixed one."""
        fp = same_shard_fingerprints(1)[0]
        for _round in range(3):
            write(store, fp)
            store.delete_object(fp)
        assert not store.has_object(fp)
        assert store.verify()["problems"] == []
        write(store, fp)
        assert store.has_object(fp)
        assert fp not in store.list_tombstones()

    def test_files_removed_even_when_bookkeeping_fails(self, store, monkeypatch):
        """An unwritable log/lock degrades the *bookkeeping* (swallowed
        OSError, no tombstone) — it must not veto the deletion itself."""
        fp = same_shard_fingerprints(1)[0]
        write(store, fp)

        def broken(self, shard_dir, ops, between=None):
            return  # what the OSError swallow leaves: nothing ran

        monkeypatch.setattr(CatalogStore, "_apply_shard_ops", broken)
        store.delete_object(fp)
        assert not store.has_object(fp)

    def test_tombstones_pruned_after_ttl(self, store, monkeypatch):
        fp, other = same_shard_fingerprints(2)
        write(store, fp)
        store.delete_object(fp)
        assert fp in store.list_tombstones()
        # Advance the clock past the TTL; the next compaction in the
        # shard prunes the expired tombstone.
        real_now = store_module._now
        monkeypatch.setattr(
            store_module, "_now", lambda: real_now() + store.tombstone_ttl + 1
        )
        write(store, other)
        assert fp not in store.list_tombstones()
        assert store.verify()["problems"] == []


class TestTombstonePruningClockSkew:
    """Pruning judges tombstones by clamped age under a configurable
    horizon — a lagging local clock or a peer's fast clock must never
    prune a fresh tombstone early (the satellite regression)."""

    def test_future_stamped_tombstone_is_fresh_not_ancient(
        self, store, monkeypatch
    ):
        """A peer with a faster clock stamps a tombstone 'in the
        future'; our clamped age reads 0 — fresh — so compactions keep
        it until a full TTL elapses past the stamp."""
        fp, other = same_shard_fingerprints(2)
        write(store, fp)
        real_now = store_module._now
        # Stamp the deletion 1h ahead of our clock (the peer's clock).
        monkeypatch.setattr(store_module, "_now", lambda: real_now() + 3600)
        store.delete_object(fp)
        # Back on our (lagging) clock, a compaction runs: the tombstone
        # has negative raw age and must survive.
        monkeypatch.setattr(store_module, "_now", real_now)
        write(store, other)
        assert fp in store.list_tombstones()
        assert store.verify()["problems"] == []

    def test_clock_skew_allowance_delays_pruning(self, tmp_path, monkeypatch):
        """With ``clock_skew=S``, a tombstone aged past the TTL but
        inside TTL+S survives — a pruner whose clock runs ahead by up
        to S cannot drop another writer's fresh tombstone."""
        store = CatalogStore(
            str(tmp_path / "cat"), tombstone_ttl=100.0, clock_skew=50.0
        )
        fp, other, third = same_shard_fingerprints(3)
        write(store, fp)
        store.delete_object(fp)
        real_now = store_module._now
        monkeypatch.setattr(store_module, "_now", lambda: real_now() + 130)
        write(store, other)  # ttl < age 130 < ttl + skew: kept
        assert fp in store.list_tombstones()
        monkeypatch.setattr(store_module, "_now", lambda: real_now() + 151)
        write(store, third)  # past ttl + skew: pruned
        assert fp not in store.list_tombstones()
        assert store.verify()["problems"] == []

    def test_tombstone_ttl_is_per_store_configurable(
        self, tmp_path, monkeypatch
    ):
        store = CatalogStore(str(tmp_path / "cat"), tombstone_ttl=5.0)
        fp, other = same_shard_fingerprints(2)
        write(store, fp)
        store.delete_object(fp)
        real_now = store_module._now
        monkeypatch.setattr(store_module, "_now", lambda: real_now() + 6)
        write(store, other)
        assert fp not in store.list_tombstones()


class TestCrashedDeleter:
    def test_deleter_dies_before_file_removal(self, store):
        """Killed after the tombstone append, before any file is gone:
        the intent is durable, the file still reads, verify is clean,
        and sweep finishes the removal."""
        fp = same_shard_fingerprints(1)[0]
        write(store, fp)
        with crash_at(store, "shard-log-appended"):
            with pytest.raises(InjectedCrash):
                store.delete_object(fp)
        # Tombstone durable via log replay; object file untouched.
        assert fp in store.list_tombstones()
        assert store.has_object(fp)
        assert store.verify()["problems"] == []
        swept = store.sweep_tombstones()
        assert swept == 1
        assert not store.has_object(fp)
        assert store.verify()["problems"] == []

    def test_deleter_dies_after_file_removal(self, store):
        """Killed between file removal and compaction: the log replays
        the deletion, the next writer compacts."""
        first, second = same_shard_fingerprints(2)
        write(store, first)
        with crash_at(store, "object-files-removed"):
            with pytest.raises(InjectedCrash):
                store.delete_object(first)
        assert not store.has_object(first)
        assert first in store.list_tombstones()
        assert store.verify()["problems"] == []
        write(store, second)  # compacts the shard
        assert not os.path.exists(
            store._shard_log_path(store._object_shard_dir(first))
        )
        assert store.verify()["problems"] == []

    def test_write_after_crashed_delete_is_not_reaped(self, store):
        """A re-add after a half-finished deletion clears the tombstone
        atomically with its object record, so a later sweep must not
        reap the fresh write."""
        fp = same_shard_fingerprints(1)[0]
        write(store, fp)
        with crash_at(store, "shard-log-appended"):
            with pytest.raises(InjectedCrash):
                store.delete_object(fp)
        write(store, fp)  # tombstoned → treated absent → re-persists
        assert store.sweep_tombstones() == 0
        assert store.has_object(fp)
        assert fp not in store.list_tombstones()
        assert store.verify()["problems"] == []


def _killed_deleter(root, fingerprint):
    store = CatalogStore(root)
    store.fault_hook = exit_hook("shard-log-appended")
    store.delete_object(fingerprint)


def _deleting_writer(root, fingerprints):
    store = CatalogStore(root)
    for fp in fingerprints:
        store.write_object(fp, {"name": fp}, {"c": make_entry({fp})})
        store.delete_object(fp)
        store.write_object(fp, {"name": fp}, {"c": make_entry({fp})})


class TestProcessDeleters:
    def test_killed_deleter_process_leaves_verifiable_store(self, store):
        fp = same_shard_fingerprints(1)[0]
        write(store, fp)
        run_killed(_killed_deleter, (store.root, fp))
        assert fp in store.list_tombstones()
        assert store.verify()["problems"] == []
        store.sweep_tombstones()
        assert not store.has_object(fp)
        assert store.verify()["problems"] == []

    def test_concurrent_add_remove_across_processes(self, store):
        """Four processes add/remove/re-add disjoint fingerprints in one
        shard; every final re-add must survive, the store must verify."""
        fingerprints = same_shard_fingerprints(16)
        chunks = [fingerprints[i::4] for i in range(4)]
        run_ok([(_deleting_writer, (store.root, chunk)) for chunk in chunks])
        assert store.list_objects() == sorted(fingerprints)
        assert store.list_tombstones() == {}
        assert store.verify()["problems"] == []

    def test_gc_races_builder(self, tmp_path):
        """A gc'ing catalog process next to a building one.

        Deletions and additions compose at the protocol level (no file
        or manifest ever torn, the keepers always survive).  Liveness is
        temporal, though: the gc may reclaim an object the builder wrote
        but had not yet saved a manifest reference to — the documented
        heal path (refresh against the live corpus recomputes and
        re-persists, clearing the tombstone) must then restore a fully
        verifying store."""
        root = str(tmp_path / "cat")

        def _keepers():
            return [
                Table(f"k{i}", {"c": [f"v{i}", f"w{i}"]}) for i in range(4)
            ]

        def _additions():
            return [Table(f"n{i}", {"c": [f"z{i}"]}) for i in range(3)]

        drop = [Table(f"d{i}", {"c": [f"x{i}", f"y{i}"]}) for i in range(4)]
        seeded = Catalog.open(root, num_perm=8, bands=4)
        seeded.refresh(_keepers() + drop)
        seeded.save()

        def _gc_worker(root):
            catalog = Catalog.load(root)
            catalog.refresh(_keepers())
            catalog.save()
            catalog.gc()

        def _build_worker(root):
            catalog = Catalog.load(root)
            catalog.refresh(_keepers() + _additions())
            catalog.save()

        run_ok([(_gc_worker, (root,)), (_build_worker, (root,))])
        manifest = CatalogStore(root).read_manifest()
        # The keepers survive both writers unconditionally.
        assert {f"k{i}" for i in range(4)} <= set(manifest["tables"])
        # Reconcile: one refresh against the live corpus re-signs any
        # object the racing gc reclaimed before the builder's save
        # landed; afterwards the store must verify clean.
        live = {t.name: t for t in _keepers() + _additions()}
        survivors = [live[name] for name in manifest["tables"] if name in live]
        healed = Catalog.load(root, corpus=survivors)
        healed.save()
        assert healed.verify()["problems"] == []


# ----------------------------------------------------------------------
# Property tests: interleaved deltas replay to the model's live set
# ----------------------------------------------------------------------
_KEYS = same_shard_fingerprints(4)


def _ops():
    return st.lists(
        st.tuples(
            st.sampled_from(["add", "remove", "compact"]),
            st.sampled_from(_KEYS),
        ),
        min_size=1,
        max_size=12,
    )


class TestTombstoneProperties:
    @settings(max_examples=40, deadline=None)
    @given(ops=_ops())
    def test_interleavings_replay_to_model_live_set(self, tmp_path_factory, ops):
        """Any sequence of add/remove/compact deltas leaves exactly the
        model's live set, a clean verify, and no stray tombstone for a
        live object."""
        store = CatalogStore(
            str(tmp_path_factory.mktemp("tomb") / "cat")
        )
        model = set()
        for op, key in ops:
            if op == "add":
                write(store, key)
                model.add(key)
            elif op == "remove":
                store.delete_object(key)
                model.discard(key)
            else:
                # An unrelated writer in the shard: forces a compaction
                # pass over whatever the log currently holds.
                store.write_profiles("compactor", {"k": [1.0]})
        assert set(store.list_objects()) == model
        tombstones = set(store.list_tombstones())
        assert tombstones.isdisjoint(model)
        assert store.verify()["problems"] == []

    @settings(max_examples=15, deadline=None)
    @given(ops=_ops())
    def test_every_log_prefix_verifies(self, tmp_path_factory, ops):
        """Replay the same delta sequence as raw log records: after
        every prefix the shard reads back a consistent section pair
        (no fingerprint both live and tombstoned) and the full store
        verifies — the crash guarantee at every possible cut point."""
        store = CatalogStore(str(tmp_path_factory.mktemp("tomb") / "cat"))
        # Materialize every fingerprint once so files exist, then build
        # a pure log-replay scenario over them.
        for key in _KEYS:
            write(store, key)
        shard_dir = store._object_shard_dir(_KEYS[0])
        records = []
        for op, key in ops:
            if op == "add":
                # The writer protocol's record order: tombstone clear,
                # then object record — every prefix stays consistent.
                records.append(
                    {"section": "tombstones", "op": "del", "key": key}
                )
                records.append(
                    {"section": "objects", "op": "set", "key": key, "value": 2}
                )
            elif op == "remove":
                records.append({"section": "objects", "op": "del", "key": key})
                records.append(
                    {
                        "section": "tombstones",
                        "op": "set",
                        "key": key,
                        "value": {"ts": 0.0},
                    }
                )
        log_path = store._shard_log_path(shard_dir)
        for prefix in range(len(records) + 1):
            torn_log(log_path, records[:prefix])
            objects = store._read_shard_section(shard_dir, "objects")
            tombstones = store._read_shard_section(shard_dir, "tombstones")
            assert set(objects).isdisjoint(set(tombstones))
            assert store.verify()["problems"] == []
            # A torn tail on top of the prefix must not change the
            # replayed state either.
            torn_log(
                log_path, records[:prefix], torn_tail='{"section": "obj'
            )
            assert store._read_shard_section(shard_dir, "objects") == objects
        os.remove(log_path)
