"""StoreBackend contract and equivalence tests.

The store speaks to disk only through a :class:`StoreBackend`; these
tests pin the contract both implementations must satisfy (atomic blob
writes, appends, namespace queries, locks), that a full catalog behaves
identically over either backend, and the segments backend's own
machinery: garbage accounting, compaction, and read-only replica sync.
"""

import json
import os

import pytest

from repro.catalog import (
    Catalog,
    CatalogStore,
    CatalogStoreError,
    LocalFSBackend,
    SegmentsBackend,
    backend_for,
)
from repro.dataframe.table import Table
from tests.harness.entries import make_entry


@pytest.fixture(params=["local", "segments"])
def backend(request, tmp_path):
    root = str(tmp_path / "store")
    os.makedirs(root, exist_ok=True)
    if request.param == "local":
        return LocalFSBackend(root)
    return SegmentsBackend(root)


class TestBackendContract:
    def test_write_read_roundtrip(self, backend):
        path = os.path.join(backend.root, "dir", "blob.bin")
        backend.makedirs(os.path.dirname(path))
        backend.write_bytes(path, b"hello")
        assert backend.read_bytes(path) == b"hello"
        with backend.open_read(path) as handle:
            assert handle.read(2) == b"he"
        assert backend.size(path) == 5
        assert backend.exists(path)

    def test_overwrite_replaces(self, backend):
        path = os.path.join(backend.root, "blob.bin")
        backend.write_bytes(path, b"first")
        backend.write_bytes(path, b"second and longer")
        assert backend.read_bytes(path) == b"second and longer"

    def test_append_creates_and_extends(self, backend):
        path = os.path.join(backend.root, "log.jsonl")
        backend.append_bytes(path, b"a\n")
        backend.append_bytes(path, b"b\n")
        assert backend.read_bytes(path) == b"a\nb\n"

    def test_write_stream_lands_atomically(self, backend):
        path = os.path.join(backend.root, "big.npz")
        with backend.write_stream(path) as handle:
            handle.write(b"chunk1")
            handle.write(b"chunk2")
        assert backend.read_bytes(path) == b"chunk1chunk2"

    def test_remove_and_missing_errors(self, backend):
        path = os.path.join(backend.root, "gone.bin")
        backend.write_bytes(path, b"x")
        backend.remove(path)
        assert not backend.exists(path)
        with pytest.raises(FileNotFoundError):
            backend.remove(path)
        with pytest.raises(FileNotFoundError):
            backend.read_bytes(path)
        with pytest.raises(OSError):
            backend.size(path)

    def test_namespace_queries(self, backend):
        inner = os.path.join(backend.root, "objects", "ab")
        backend.makedirs(inner)
        backend.write_bytes(os.path.join(inner, "x.bin"), b"1")
        backend.write_bytes(os.path.join(inner, "y.bin"), b"2")
        assert backend.isdir(os.path.join(backend.root, "objects"))
        assert backend.isdir(inner)
        assert not backend.isdir(os.path.join(inner, "x.bin"))
        assert sorted(backend.listdir(inner)) == ["x.bin", "y.bin"]
        assert backend.listdir(os.path.join(backend.root, "objects")) == ["ab"]

    def test_lock_is_reentrant_context(self, backend):
        lock_path = os.path.join(backend.root, "some", ".lock")
        with backend.lock(lock_path):
            with backend.lock(lock_path):
                pass  # same-thread re-entry must not deadlock

    def test_disk_bytes_positive_after_writes(self, backend):
        backend.write_bytes(os.path.join(backend.root, "a.bin"), b"x" * 100)
        assert backend.disk_bytes() >= 100


def build_store(store):
    """One representative op sequence: writes, overwrite, delete,
    profiles, results, aux."""
    for i in range(6):
        store.write_object(
            f"fp{i:04d}", {"name": f"t{i}"}, {"c": make_entry({f"v{i}"})}
        )
    store.write_object(
        "fp0000", {"name": "t0-v2"}, {"c": make_entry({"v0", "v0b"})},
        overwrite=True,
    )
    store.delete_object("fp0005")
    store.write_profiles("aaaa1111", {"k": [0.25, 0.75]})
    store.write_result("cafe0001", {"run": 1})
    store.write_aux("corpus.json", {"tables": 6})


class TestStoreEquivalence:
    """The same store operations observe identical results over either
    backend — only the physical representation differs."""

    def test_logical_state_matches(self, tmp_path):
        local = CatalogStore(str(tmp_path / "local"), backend="local")
        seg = CatalogStore(str(tmp_path / "seg"), backend="segments")
        build_store(local)
        build_store(seg)
        assert local.list_objects() == seg.list_objects()
        for fp in local.list_objects():
            assert local.read_object(fp) == seg.read_object(fp)
        assert set(local.list_tombstones()) == set(seg.list_tombstones())
        assert local.read_result("cafe0001") == seg.read_result("cafe0001")
        assert local.read_aux("corpus.json") == seg.read_aux("corpus.json")
        lp = local.read_profiles("aaaa1111")
        sp = seg.read_profiles("aaaa1111")
        assert list(lp) == list(sp)
        assert lp["k"].tolist() == sp["k"].tolist()
        assert local.verify()["problems"] == []
        assert seg.verify()["problems"] == []

    def test_catalog_over_segments_round_trips(self, tmp_path):
        root = str(tmp_path / "cat")
        corpus = [
            Table(f"t{i}", {"k": [f"v{i}", f"w{i}"]}) for i in range(4)
        ]
        catalog = Catalog(
            store=CatalogStore(root, backend="segments"),
            num_perm=8,
            bands=4,
        )
        catalog.refresh(corpus)
        catalog.save()
        # Reopen without the flag: the layout is auto-detected.
        reopened = Catalog.load(root, corpus=corpus)
        assert set(reopened.fingerprints) == {t.name for t in corpus}
        assert reopened.verify()["problems"] == []


class TestSegmentsBackend:
    def test_garbage_accounting_and_compaction(self, tmp_path):
        backend = SegmentsBackend(
            str(tmp_path / "seg"),
            compact_min_garbage=64,
            compact_garbage_ratio=0.5,
        )
        path = os.path.join(backend.root, "blob.bin")
        backend.write_bytes(path, b"x" * 100)
        keep = os.path.join(backend.root, "keep.bin")
        backend.write_bytes(keep, b"k" * 10)
        # Overwriting strands the old 100 bytes; that crosses both the
        # absolute floor and the ratio, so compaction runs.
        backend.write_bytes(path, b"y" * 10)
        assert backend.compactions >= 1
        assert backend._load_index()["garbage"] == 0
        assert backend.read_bytes(path) == b"y" * 10
        assert backend.read_bytes(keep) == b"k" * 10
        # Old segment files are actually gone from disk.
        live = {e["seg"] for e in backend._load_index()["files"].values()}
        on_disk = {
            n for n in os.listdir(backend._seg_dir) if n.endswith(".seg")
        }
        assert on_disk <= live | {backend._load_index().get("active")}

    def test_segment_rolls_at_size_threshold(self, tmp_path):
        backend = SegmentsBackend(str(tmp_path / "seg"), segment_bytes=50)
        for i in range(4):
            backend.write_bytes(
                os.path.join(backend.root, f"b{i}.bin"), b"z" * 40
            )
        segs = {e["seg"] for e in backend._load_index()["files"].values()}
        assert len(segs) > 1  # 40-byte blobs cannot share a 50-byte segment

    def test_sync_into_replica_reads_identically(self, tmp_path):
        src = CatalogStore(str(tmp_path / "src"), backend="segments")
        build_store(src)
        report = src.backend.sync_into(str(tmp_path / "replica"))
        assert report["copied"] == report["segments"] >= 1
        replica = CatalogStore(str(tmp_path / "replica"))
        assert replica.backend.name == "segments"
        assert replica.list_objects() == src.list_objects()
        for fp in src.list_objects():
            assert replica.read_object(fp) == src.read_object(fp)
        assert replica.verify()["problems"] == []
        # Re-sync with nothing new: incremental, nothing copied.
        assert src.backend.sync_into(str(tmp_path / "replica"))["copied"] == 0

    def test_sync_into_self_refuses(self, tmp_path):
        backend = SegmentsBackend(str(tmp_path / "seg"))
        backend.write_bytes(os.path.join(backend.root, "a.bin"), b"x")
        with pytest.raises(CatalogStoreError):
            backend.sync_into(str(tmp_path / "seg"))

    def test_path_outside_root_refused(self, tmp_path):
        backend = SegmentsBackend(str(tmp_path / "seg"))
        with pytest.raises(CatalogStoreError):
            backend.write_bytes(str(tmp_path / "elsewhere.bin"), b"x")

    def test_corrupt_index_surfaces_as_store_error(self, tmp_path):
        backend = SegmentsBackend(str(tmp_path / "seg"))
        backend.write_bytes(os.path.join(backend.root, "a.bin"), b"x")
        with open(backend._index_path, "w") as handle:
            handle.write("{ not json")
        with pytest.raises(CatalogStoreError):
            backend.read_bytes(os.path.join(backend.root, "a.bin"))


class TestBackendSelection:
    def test_auto_detects_segments_root(self, tmp_path):
        root = str(tmp_path / "seg")
        CatalogStore(root, backend="segments").write_object(
            "fp1", {"name": "t"}, {"c": make_entry({"v"})}
        )
        reopened = CatalogStore(root)
        assert reopened.backend.name == "segments"
        assert reopened.has_object("fp1")

    def test_defaults_to_local(self, tmp_path):
        assert CatalogStore(str(tmp_path / "new")).backend.name == "local"

    def test_unknown_name_raises(self, tmp_path):
        with pytest.raises(CatalogStoreError):
            CatalogStore(str(tmp_path / "x"), backend="s3")

    def test_instance_passthrough(self, tmp_path):
        backend = SegmentsBackend(str(tmp_path / "seg"), segment_bytes=128)
        assert backend_for(str(tmp_path / "seg"), backend) is backend

    def test_local_layout_is_plain_files(self, tmp_path):
        """The local backend stays byte-identical to the historical
        layout: one real file per object, readable without the store."""
        store = CatalogStore(str(tmp_path / "cat"))
        store.write_object("fp1", {"name": "t"}, {"c": make_entry({"v"})})
        path = store._object_path("fp1")
        assert os.path.isfile(path)
        with open(path, "rb") as handle:
            assert handle.read() == store.backend.read_bytes(path)
        manifest = os.path.join(os.path.dirname(path), "manifest.json")
        with open(manifest) as handle:
            json.load(handle)  # a real JSON file on disk
