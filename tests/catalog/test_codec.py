"""Round-trip and corruption properties of the column-entry codecs.

Both registered codec versions (1 = legacy JSON, 2 = packed binary) must
round-trip arbitrary ColumnEntry contents exactly, encode canonically
(equal input ⇒ identical bytes), and reject malformed input with
:class:`CatalogStoreError` rather than returning partial entries.
"""

import numpy as np
import pytest

from repro.catalog.store import CODECS, BinaryCodec, CatalogStoreError, JsonCodec
from repro.discovery.index import ColumnEntry

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

ALL_CODECS = sorted(CODECS.values(), key=lambda codec: codec.version)


def entry_of(values, normalized=None, signature=None, num_perm=8):
    distinct = frozenset(values)
    if normalized is None:
        normalized = frozenset(v.strip().lower() for v in distinct)
    if signature is None:
        from repro.discovery.minhash import MinHasher

        signature = MinHasher(num_perm=num_perm).signature(distinct)
    return ColumnEntry(
        distinct=distinct,
        normalized=frozenset(normalized),
        signature=np.asarray(signature, dtype=np.uint64),
    )


# Value strategy: arbitrary unicode (no surrogates — not UTF-8
# encodable), including empties, whitespace, quotes, and control chars.
_values = st.sets(st.text(max_size=24), max_size=12)
_signatures = st.lists(
    st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=16
)


@st.composite
def _entries(draw):
    columns = draw(st.sets(st.text(min_size=1, max_size=16), max_size=4))
    out = {}
    for column in columns:
        values = draw(_values)
        # Half the time force an independent normalized set, so the
        # "derived" fast path of the binary codec never leaks into
        # entries whose normalized form was not actually derived.
        if draw(st.booleans()):
            normalized = None
        else:
            normalized = draw(_values)
        out[column] = entry_of(
            values, normalized=normalized, signature=draw(_signatures)
        )
    return out


@st.composite
def _metas(draw):
    return draw(
        st.dictionaries(
            st.text(max_size=12),
            st.one_of(
                st.none(),
                st.integers(min_value=-(10**9), max_value=10**9),
                st.text(max_size=16),
                st.lists(st.text(max_size=8), max_size=4),
            ),
            max_size=4,
        )
    )


class TestRoundTripProperties:
    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: f"v{c.version}")
    @settings(max_examples=60, deadline=None)
    @given(meta=_metas(), entries=_entries())
    def test_encode_decode_identity(self, codec, meta, entries):
        blob = codec.encode(meta, entries)
        decoded_meta, decoded = codec.decode(blob)
        assert decoded_meta == meta
        assert decoded == entries
        for column, entry in decoded.items():
            assert entry.distinct == entries[column].distinct
            assert entry.normalized == entries[column].normalized
            assert np.array_equal(entry.signature, entries[column].signature)
            assert entry.signature.dtype == np.uint64

    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: f"v{c.version}")
    @settings(max_examples=30, deadline=None)
    @given(meta=_metas(), entries=_entries())
    def test_encoding_is_canonical(self, codec, meta, entries):
        blob = codec.encode(meta, entries)
        decoded_meta, decoded = codec.decode(blob)
        assert codec.encode(decoded_meta, decoded) == blob

    @settings(max_examples=30, deadline=None)
    @given(meta=_metas(), entries=_entries())
    def test_meta_only_read_matches_full_decode(self, meta, entries):
        codec = CODECS[2]
        blob = codec.encode(meta, entries)
        assert codec.decode_meta(blob) == codec.decode(blob)[0]

    def test_seeded_random_loop_round_trip(self):
        # Deterministic non-hypothesis sweep, so round-trip coverage
        # survives environments without hypothesis installed.
        rng = np.random.default_rng(7)
        alphabet = list("abcXYZ 0159_é中\n\"'\\")
        for trial in range(50):
            entries = {}
            for c in range(int(rng.integers(0, 4))):
                values = {
                    "".join(
                        rng.choice(alphabet, size=int(rng.integers(0, 9)))
                    )
                    for _ in range(int(rng.integers(0, 10)))
                }
                entries[f"col{c}"] = entry_of(
                    values,
                    signature=rng.integers(
                        0, 1 << 63, size=int(rng.integers(1, 12))
                    ).astype(np.uint64),
                )
            meta = {"trial": trial, "name": f"t{trial}"}
            for codec in ALL_CODECS:
                decoded_meta, decoded = codec.decode(codec.encode(meta, entries))
                assert decoded_meta == meta
                assert decoded == entries


class TestBinaryCorruption:
    def blob(self):
        entries = {
            "key": entry_of({"a", "b", "c"}),
            "value": entry_of({" X ", "y"}, normalized={"explicit"}),
        }
        return CODECS[2].encode({"name": "t", "num_rows": 3}, entries)

    def test_truncation_at_every_length_rejected(self):
        blob = self.blob()
        for cut in range(len(blob)):
            with pytest.raises(CatalogStoreError):
                CODECS[2].decode(blob[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CatalogStoreError):
            CODECS[2].decode(self.blob() + b"\x00")

    def test_bad_magic_rejected(self):
        blob = bytearray(self.blob())
        blob[:4] = b"NOPE"
        with pytest.raises(CatalogStoreError):
            CODECS[2].decode(bytes(blob))

    def test_unknown_codec_version_rejected(self):
        blob = bytearray(self.blob())
        blob[4:6] = (99).to_bytes(2, "little")
        with pytest.raises(CatalogStoreError):
            CODECS[2].decode(bytes(blob))

    def test_garbled_body_rejected_or_decodes_cleanly(self):
        # Flipping any single byte must never crash with a non-store
        # error or return half-decoded entries: either the codec detects
        # the corruption, or (e.g. a flipped signature bit) the blob
        # still decodes into complete, well-formed entries.
        blob = self.blob()
        for position in range(6, len(blob)):
            mutated = bytearray(blob)
            mutated[position] ^= 0xFF
            try:
                _meta, entries = CODECS[2].decode(bytes(mutated))
            except CatalogStoreError:
                continue
            for entry in entries.values():
                assert isinstance(entry.distinct, frozenset)
                assert isinstance(entry.normalized, frozenset)
                assert entry.signature.dtype == np.uint64

    def test_oversized_column_name_raises_store_error(self):
        entries = {"x" * 70_000: entry_of({"a"})}
        with pytest.raises(CatalogStoreError, match="64KiB name field"):
            CODECS[2].encode({}, entries)

    def test_json_blob_rejected_by_binary_codec(self):
        json_blob = CODECS[1].encode({}, {"c": entry_of({"a"})})
        with pytest.raises(CatalogStoreError):
            CODECS[2].decode(json_blob)

    def test_binary_blob_rejected_by_json_codec(self):
        with pytest.raises(CatalogStoreError):
            CODECS[1].decode(self.blob())


class TestCodecRegistry:
    def test_versions_and_extensions_distinct(self):
        assert CODECS[1].version == 1 and isinstance(CODECS[1], JsonCodec)
        assert CODECS[2].version == 2 and isinstance(CODECS[2], BinaryCodec)
        assert CODECS[1].extension != CODECS[2].extension

    def test_binary_beats_json_on_realistic_entries(self):
        from repro.discovery.minhash import MinHasher

        hasher = MinHasher(num_perm=64)
        entries = {}
        for c in range(5):
            values = {f"k{c}_{i}" for i in range(300)}
            entries[f"col_{c}"] = ColumnEntry(
                distinct=frozenset(values),
                normalized=frozenset(values),
                signature=hasher.signature(values),
            )
        meta = {"name": "t", "column_names": sorted(entries)}
        json_size = len(CODECS[1].encode(meta, entries))
        binary_size = len(CODECS[2].encode(meta, entries))
        assert binary_size * 3 <= json_size
