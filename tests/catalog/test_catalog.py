"""Tests for the Catalog facade: incremental maintenance + persistence."""

import numpy as np
import pytest

from repro.catalog import Catalog, CatalogStore, CatalogStoreError
from repro.dataframe.table import Table
from repro.discovery.index import DiscoveryIndex


def make_corpus(n=4, shift=0):
    corpus = {}
    for i in range(n):
        keys = [f"k{j}" for j in range(shift, shift + 20)]
        corpus[f"t{i}"] = Table(
            f"t{i}", {"key": keys, f"v{i}": [float(j) for j in range(20)]}
        )
    return corpus


def probe_table():
    return Table("probe", {"key": [f"k{j}" for j in range(20)]})


def all_joinable(index, table):
    return {
        column: index.joinable(table, column, exclude_table=table.name)
        for column in table.column_names
    }


class TestIncrementalMaintenance:
    def test_add_remove_update_matches_rebuild(self, tmp_path):
        corpus = make_corpus(4)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)

        # Mutate: drop t3, add t4, change t1's content.
        del corpus["t3"]
        corpus["t4"] = Table("t4", {"key": [f"k{j}" for j in range(10)]})
        corpus["t1"] = Table(
            "t1", {"key": [f"k{j}" for j in range(5, 25)], "v1": list(range(20))}
        )
        diff = catalog.refresh(corpus)
        assert diff.removed == ["t3"]
        assert diff.added == ["t4"]
        assert diff.updated == ["t1"]
        assert diff.unchanged == ["t0", "t2"]

        rebuilt = DiscoveryIndex(**catalog.config).build(corpus.values())
        probe = probe_table()
        assert all_joinable(catalog.index, probe) == all_joinable(rebuilt, probe)

    def test_unchanged_tables_not_resigned(self, tmp_path, monkeypatch):
        corpus = make_corpus(3)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        signed_before = catalog.computed_columns

        def boom(table, column):
            raise AssertionError(
                f"re-signed unchanged column {table.name}.{column}"
            )

        monkeypatch.setattr(catalog.index, "compute_column_entry", boom)
        diff = catalog.refresh(dict(corpus))
        assert diff.unchanged == sorted(corpus)
        assert catalog.computed_columns == signed_before

    def test_update_requires_known_table(self):
        catalog = Catalog()
        with pytest.raises(KeyError):
            catalog.update(Table("ghost", {"x": [1]}))

    def test_update_detects_staleness(self):
        catalog = Catalog()
        table = Table("t", {"x": [1, 2]})
        catalog.add(table)
        assert not catalog.is_stale(table)
        assert catalog.update(table) is False
        changed = Table("t", {"x": [1, 3]})
        assert catalog.is_stale(changed)
        assert catalog.update(changed) is True
        assert not catalog.is_stale(changed)

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            Catalog().remove("ghost")

    def test_works_without_store(self):
        catalog = Catalog()
        catalog.refresh(make_corpus(2))
        assert len(catalog) == 2
        with pytest.raises(CatalogStoreError):
            catalog.save()


class TestPersistence:
    def test_save_load_roundtrip_joinable(self, tmp_path):
        corpus = make_corpus(4)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()

        loaded = Catalog.load(str(tmp_path / "c"), corpus=corpus)
        assert loaded.computed_columns == 0, "load re-signed unchanged tables"
        probe = probe_table()
        assert all_joinable(loaded.index, probe) == all_joinable(
            catalog.index, probe
        )

    def test_load_reports_unchanged_not_added(self, tmp_path):
        corpus = make_corpus(3)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()
        loaded = Catalog.load(str(tmp_path / "c"))
        diff = loaded.refresh(corpus)
        assert diff.unchanged == sorted(corpus)
        assert not diff.changed

    def test_load_resigns_only_stale_tables(self, tmp_path):
        corpus = make_corpus(3)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()

        corpus["t1"] = Table("t1", {"key": ["zzz"], "v1": [9.0]})
        loaded = Catalog.load(str(tmp_path / "c"), corpus=corpus)
        assert loaded.computed_columns == 2  # only t1's two columns
        rebuilt = DiscoveryIndex(**catalog.config).build(corpus.values())
        probe = probe_table()
        assert all_joinable(loaded.index, probe) == all_joinable(rebuilt, probe)

    def test_objects_not_reused_across_configs(self, tmp_path):
        # Crash-before-save scenario: objects written under seed=1 exist
        # but no manifest guards them.  A seed=0 catalog over the same
        # store must re-sign, not silently adopt seed=1 signatures.
        corpus = make_corpus(3)
        first = Catalog(CatalogStore(str(tmp_path / "c")), seed=1)
        first.refresh(corpus)  # objects persisted eagerly; no save()

        second = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        second.refresh(corpus)
        assert second.loaded_columns == 0
        assert second.computed_columns == 6
        clean = DiscoveryIndex(**second.config).build(corpus.values())
        probe = probe_table()
        assert all_joinable(second.index, probe) == all_joinable(clean, probe)

    def test_readd_after_filtered_refresh_uses_snapshot(self, tmp_path):
        corpus = make_corpus(3)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()
        loaded = Catalog.load(str(tmp_path / "c"))
        partial = {n: t for n, t in corpus.items() if n != "t1"}
        loaded.refresh(partial)
        diff = loaded.refresh(corpus)  # t1 comes back, identical content
        assert diff.added == ["t1"]
        assert loaded.computed_columns == 0
        # Re-added via the packed snapshot, not eager per-column objects.
        from repro.discovery.index import ColumnRef

        assert ColumnRef("t1", "key") not in loaded.index._entries

    def test_refresh_rejects_duplicate_table_names(self):
        catalog = Catalog()
        clash = [
            Table("x", {"a": [1, 2]}),
            Table("x", {"b": [3, 4]}),
        ]
        with pytest.raises(ValueError, match="duplicate table name"):
            catalog.refresh(clash)

    def test_refresh_keys_by_table_name_not_dict_key(self, tmp_path):
        corpus = make_corpus(2)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        aliased = {"weird_alias": corpus["t0"], "t1": corpus["t1"]}
        first = catalog.refresh(aliased)
        assert first.added == ["t0", "t1"]
        # Same aliased dict again must converge, not churn remove/re-add.
        second = catalog.refresh(aliased)
        assert not second.changed
        assert second.unchanged == ["t0", "t1"]

    def test_remove_then_refresh_reports_no_spurious_diff(self, tmp_path):
        corpus = make_corpus(3)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()
        catalog.remove("t2")
        smaller = {n: t for n, t in corpus.items() if n != "t2"}
        diff = catalog.refresh(smaller)
        assert not diff.changed  # the removal already happened
        # And a re-add after explicit removal is reported as an add.
        diff = catalog.refresh(corpus)
        assert diff.added == ["t2"]

    def test_config_mismatch_rejected(self, tmp_path):
        store = CatalogStore(str(tmp_path / "c"))
        catalog = Catalog(store, num_perm=32, bands=8)
        catalog.refresh(make_corpus(1))
        catalog.save()
        with pytest.raises(CatalogStoreError):
            Catalog(CatalogStore(str(tmp_path / "c")), num_perm=64)

    def test_load_adopts_stored_config(self, tmp_path):
        store = CatalogStore(str(tmp_path / "c"))
        catalog = Catalog(store, num_perm=32, bands=8, min_containment=0.4)
        catalog.refresh(make_corpus(1))
        catalog.save()
        loaded = Catalog.load(str(tmp_path / "c"))
        assert loaded.config["num_perm"] == 32
        assert loaded.config["min_containment"] == 0.4

    def test_open_creates_then_loads(self, tmp_path):
        path = str(tmp_path / "c")
        corpus = make_corpus(2)
        first = Catalog.open(path, corpus=corpus, num_perm=32, bands=8)
        first.save()
        again = Catalog.open(path, corpus=corpus)
        assert again.config["num_perm"] == 32
        assert again.computed_columns == 0

    def test_load_missing_manifest_raises(self, tmp_path):
        with pytest.raises(CatalogStoreError):
            Catalog.load(str(tmp_path / "missing"))

    def test_save_on_loaded_catalog_preserves_manifest(self, tmp_path):
        corpus = make_corpus(3)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()
        # Load without a corpus, save again: the manifest (and hence a
        # following gc) must keep everything the catalog still references.
        loaded = Catalog.load(str(tmp_path / "c"))
        loaded.save()
        assert loaded.gc() == 0
        manifest = loaded.store.read_manifest()
        assert set(manifest["tables"]) == set(corpus)
        rehydrated = Catalog.load(str(tmp_path / "c"), corpus=corpus)
        assert rehydrated.computed_columns == 0  # snapshot rows survived too
        assert rehydrated.index._entries == {}  # hydrated from snapshot

    def test_update_skips_fingerprint_for_identical_object(self, tmp_path):
        corpus = make_corpus(2)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        import repro.catalog.catalog as catalog_module

        extra = dict(corpus)
        extra["t_new"] = Table("t_new", {"key": ["k0"], "v": [1.0]})
        original = catalog_module.table_fingerprint

        def only_new(table):
            assert table.name == "t_new", (
                f"re-fingerprinted unchanged table {table.name}"
            )
            return original(table)

        catalog_module.table_fingerprint = only_new
        try:
            diff = catalog.refresh(extra)
        finally:
            catalog_module.table_fingerprint = original
        assert diff.added == ["t_new"]
        assert diff.unchanged == sorted(corpus)

    def test_gc_on_loaded_catalog_keeps_manifest_objects(self, tmp_path):
        corpus = make_corpus(3)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()
        # Load without a corpus: nothing live in memory, but the manifest
        # still references every object — gc must not reclaim them.
        loaded = Catalog.load(str(tmp_path / "c"))
        assert loaded.gc() == 0
        rehydrated = Catalog.load(str(tmp_path / "c"), corpus=corpus)
        assert rehydrated.computed_columns == 0
        assert rehydrated.index.column_entries("t0")  # objects still readable

    def test_hydration_with_missing_object_recomputes(self, tmp_path):
        corpus = make_corpus(2)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()
        # Snapshot and manifest still cover t1, but its object vanished
        # (external deletion): hydration must not serve signatures it can
        # never back with value sets — it recomputes and re-persists.
        object_id = next(
            o
            for o in catalog.store.list_objects()
            if o.endswith(catalog.fingerprints["t1"])
        )
        catalog.store.delete_object(object_id)
        loaded = Catalog.load(str(tmp_path / "c"), corpus=corpus)
        assert loaded.computed_columns == 2
        probe = probe_table()
        assert loaded.index.joinable(probe, "key") == catalog.index.joinable(
            probe, "key"
        )
        assert any(
            o.endswith(loaded.fingerprints["t1"])
            for o in loaded.store.list_objects()
        )

    def test_stale_snapshot_not_served(self, tmp_path):
        # Crash window: manifest records new content but the snapshot
        # still holds the old content's signatures.  The fast path must
        # reject the mismatched rows and re-derive from the object store.
        corpus = make_corpus(2)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()
        old_snapshot = open(catalog.store.snapshot_path, "rb").read()

        corpus["t1"] = Table("t1", {"key": ["brand_new"], "v1": [1.0]})
        catalog.refresh(corpus)
        catalog.save()
        # Simulate the crash: snapshot write lost, manifest survived.
        open(catalog.store.snapshot_path, "wb").write(old_snapshot)

        loaded = Catalog.load(str(tmp_path / "c"), corpus=corpus)
        rebuilt = DiscoveryIndex(**catalog.config).build(corpus.values())
        probe = Table("probe", {"key": ["brand_new"]})
        assert all_joinable(loaded.index, probe) == all_joinable(rebuilt, probe)

    def test_refresh_identity_fast_path(self, tmp_path):
        corpus = make_corpus(3)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        import repro.catalog.catalog as catalog_module

        def boom(_table):
            raise AssertionError("re-fingerprinted an identical corpus")

        original = catalog_module.table_fingerprint
        catalog_module.table_fingerprint = boom
        try:
            diff = catalog.refresh(corpus)
        finally:
            catalog_module.table_fingerprint = original
        assert diff.unchanged == sorted(corpus)
        assert not diff.changed

    def test_gc_respects_on_disk_manifest_over_unsaved_removals(self, tmp_path):
        corpus = make_corpus(3)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()
        # In-memory removal that was never saved: gc must not reclaim the
        # object the on-disk manifest still references.
        smaller = {n: t for n, t in corpus.items() if n != "t2"}
        catalog.refresh(smaller)
        assert catalog.gc() == 0
        rehydrated = Catalog.load(str(tmp_path / "c"), corpus=corpus)
        assert rehydrated.computed_columns == 0  # t2's artifacts survived

    def test_gc_drops_orphaned_objects(self, tmp_path):
        corpus = make_corpus(3)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        del corpus["t2"]
        catalog.refresh(corpus)
        assert catalog.gc() == 1
        assert len(catalog.store.list_objects()) == 2

    def test_stats_shape(self, tmp_path):
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(make_corpus(2))
        catalog.save()
        stats = catalog.stats()
        assert stats["tables"] == 2
        assert stats["indexed_columns"] == 4
        assert stats["store"]["objects"] == 2


class TestLazyHydration:
    def test_snapshot_hydration_defers_object_reads(self, tmp_path):
        corpus = make_corpus(3)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()

        loaded = Catalog.load(str(tmp_path / "c"), corpus=corpus)
        # Hydrated from the snapshot: no per-column entries in memory yet.
        assert loaded.index._entries == {}
        # A query pages entries in and returns correct containment.
        probe = probe_table()
        results = loaded.index.joinable(probe, "key")
        assert results == catalog.index.joinable(probe, "key")
        assert len(loaded.index._entries) > 0

    def test_eager_add_heals_corrupt_object(self, tmp_path):
        corpus = make_corpus(2)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()
        # Corrupt an object; drop the snapshot so load takes the eager
        # object-read path.
        import os

        object_id = catalog.store.list_objects()[0]
        with open(catalog.store._object_path(object_id), "w") as handle:
            handle.write("{broken")
        os.remove(catalog.store.snapshot_path)

        loaded = Catalog.load(str(tmp_path / "c"), corpus=corpus)  # no crash
        assert loaded.computed_columns == 2  # the corrupt table re-signed
        probe = probe_table()
        assert loaded.index.joinable(probe, "key") == catalog.index.joinable(
            probe, "key"
        )
        # The damaged file was overwritten, so the next load is clean.
        again = Catalog.load(str(tmp_path / "c"), corpus=corpus)
        assert again.computed_columns == 0

    def test_lazy_load_self_heals_after_concurrent_gc(self, tmp_path):
        corpus = make_corpus(2)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()
        loaded = Catalog.load(str(tmp_path / "c"), corpus=corpus)
        # Another process gc'd the object between hydration and first use.
        for object_id in loaded.store.list_objects():
            loaded.store.delete_object(object_id)
        probe = probe_table()
        results = loaded.index.joinable(probe, "key")  # must not KeyError
        assert results == catalog.index.joinable(probe, "key")
        assert loaded.computed_columns > 0  # re-derived from live tables
        assert loaded.store.list_objects()  # and re-persisted

    def test_column_entries_forces_load(self, tmp_path):
        corpus = make_corpus(2)
        catalog = Catalog(CatalogStore(str(tmp_path / "c")), seed=0)
        catalog.refresh(corpus)
        catalog.save()
        loaded = Catalog.load(str(tmp_path / "c"), corpus=corpus)
        entries = loaded.index.column_entries("t0")
        assert set(entries) == {"key", "v0"}
        assert entries == catalog.index.column_entries("t0")
        for column, entry in entries.items():
            assert np.array_equal(
                entry.signature, catalog.index.column_entries("t0")[column].signature
            )
