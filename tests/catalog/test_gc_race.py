"""The gc liveness race, pinned end to end.

The race: gc computes its live set (from the saved manifest), a
concurrent builder then writes a new object, and gc reclaims it before
the builder's ``save()`` publishes the reference.  The fix is twofold —
writers stamp fencing-token leases on in-flight objects (gc skips any
candidate under another holder's active lease), and gc re-checks
liveness under the shard lock right before deleting (so a save that
landed after the scan re-animates its objects).

Every test here drives the exact interleaving deterministically: the
"builder" is a second store/catalog instance (its writer lease is not
the gc'ing store's own), and the stale live set is captured explicitly
before the racing write.  The pre-lease behavior (``lease_ttl=None``)
is pinned as reproducing the loss, so the protection is demonstrated
against a measured failure, not assumed.
"""

import os
import time

from repro.catalog import Catalog, CatalogStore
from repro.catalog import store as store_module
from repro.catalog.leases import DEFAULT_LEASE_TTL
from repro.dataframe.table import Table
from tests.harness.entries import make_entry
from tests.harness.faults import KILLED_EXIT_CODE, fork_context


def write(store, fingerprint):
    store.write_object(
        fingerprint, {"name": fingerprint}, {"c": make_entry({fingerprint})}
    )


class TestLeasePreservesInFlightWrites:
    def test_object_written_after_scan_survives_gc(self, tmp_path):
        """The canonical schedule: gc scans, builder writes, gc sweeps —
        the unreferenced-but-leased object must survive."""
        root = str(tmp_path / "cat")
        gc_store = CatalogStore(root)
        write(gc_store, "aaaa0001")
        stale_live = set(gc_store.list_objects())  # gc's live-set scan

        builder = CatalogStore(root)  # a second process, as far as
        write(builder, "bbbb0002")    # leases are concerned

        removed = gc_store.gc(stale_live)
        assert removed == 0
        assert gc_store.last_gc["skipped_leased"] == 1
        assert builder.has_object("bbbb0002")
        assert gc_store.verify()["problems"] == []
        # The builder "saves" (releases ownership); only now is the
        # object fair game for a gc that does not list it live.
        builder.release_writer_lease()
        assert gc_store.gc(stale_live) == 1
        assert not gc_store.has_object("bbbb0002")

    def test_pre_lease_path_reproduces_the_loss(self, tmp_path):
        """The regression this PR fixes, pinned: the identical schedule
        with leases disabled loses the builder's object."""
        root = str(tmp_path / "cat")
        gc_store = CatalogStore(root, lease_ttl=None)
        write(gc_store, "aaaa0001")
        stale_live = set(gc_store.list_objects())

        builder = CatalogStore(root, lease_ttl=None)
        write(builder, "bbbb0002")

        removed = gc_store.gc(stale_live)
        assert removed == 1  # the in-flight object is gone
        assert not builder.has_object("bbbb0002")

    def test_own_writer_lease_does_not_shield_own_garbage(self, tmp_path):
        """A store gc'ing with its own lease outstanding still reclaims
        its *own* unreferenced objects — the caller's live set is
        authoritative for its own work; leases protect other writers."""
        store = CatalogStore(str(tmp_path / "cat"))
        write(store, "aaaa0001")
        write(store, "bbbb0002")
        assert store.gc(["aaaa0001"]) == 1
        assert not store.has_object("bbbb0002")


class TestLiveCheckUnderLock:
    def test_save_landing_after_scan_reanimates(self, tmp_path):
        """Even without the lease (the builder released it the instant
        its save landed), the under-lock liveness re-check sees the new
        manifest reference and spares the object."""
        root = str(tmp_path / "cat")
        gc_store = CatalogStore(root)
        write(gc_store, "aaaa0001")
        stale_live = set(gc_store.list_objects())

        builder = CatalogStore(root)
        write(builder, "bbbb0002")
        builder.release_writer_lease()  # save() landed, lease returned

        manifest_live = {"aaaa0001", "bbbb0002"}  # what the manifest
        removed = gc_store.gc(stale_live, live_check=lambda: manifest_live)
        assert removed == 0
        assert gc_store.last_gc["skipped_live"] == 1
        assert gc_store.has_object("bbbb0002")

    def test_catalog_gc_rechecks_manifest(self, tmp_path):
        """Catalog.gc wires the re-check to a fresh manifest read: a
        peer's save between the scan and the sweep is honored."""
        root = str(tmp_path / "cat")
        corpus = [Table(f"t{i}", {"c": [f"v{i}"]}) for i in range(3)]
        catalog = Catalog.open(root, num_perm=8, bands=4)
        catalog.refresh(corpus)
        catalog.save()

        # A peer catalog saves one more table after this catalog's state
        # was settled; gc must re-read and spare it.
        peer = Catalog.load(root, corpus=corpus + [Table("t9", {"c": ["z"]})])
        peer.save()
        assert catalog.gc() == 0
        assert peer.verify()["problems"] == []


def _doomed_builder(root, fingerprint):
    store = CatalogStore(root)
    store.write_object(
        fingerprint, {"name": fingerprint}, {"c": make_entry({fingerprint})}
    )
    os._exit(KILLED_EXIT_CODE)  # dies holding the lease, before save()


class TestCrashedBuilder:
    def test_dead_writers_lease_expires_then_reclaims(self, tmp_path, monkeypatch):
        """A builder killed between write and save leaks exactly one
        lease window: gc spares the orphan while the lease is live and
        reclaims it once the TTL (+ skew) elapses."""
        root = str(tmp_path / "cat")
        store = CatalogStore(root)
        write(store, "aaaa0001")
        store.release_writer_lease()

        worker = fork_context().Process(
            target=_doomed_builder, args=(root, "bbbb0002")
        )
        worker.start()
        worker.join()
        assert worker.exitcode == KILLED_EXIT_CODE

        # While the dead writer's lease is still within TTL: protected.
        assert store.gc(["aaaa0001"]) == 0
        assert store.last_gc["skipped_leased"] == 1
        assert store.has_object("bbbb0002")

        # Past the TTL the orphan is garbage again — the leak is
        # bounded by one lease window, not forever.
        real_now = time.time
        monkeypatch.setattr(
            store_module, "_now", lambda: real_now() + DEFAULT_LEASE_TTL + 1
        )
        assert store.gc(["aaaa0001"]) == 1
        assert not store.has_object("bbbb0002")
        assert store.verify()["problems"] == []
