"""Concurrency and crash safety of the catalog store.

The store's claim: shard manifests follow an append-then-atomic-rename
protocol under per-shard advisory file locks, so concurrent writers
(threads or processes) cannot drop each other's entries, and a writer
killed between the log append and the manifest rename leaves a store
that reads back every completed update.

Fault shapes (crash-at-point, torn log tails, killed subprocesses) come
from the shared harness in ``tests/harness/faults.py``.
"""

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.catalog import Catalog, CatalogStore
from repro.catalog import store as store_module
from repro.dataframe.table import Table
from tests.harness.entries import make_entry, same_shard_fingerprints
from tests.harness.faults import (
    InjectedCrash,
    crash_at,
    exit_hook,
    run_killed,
    run_ok,
    torn_log,
)


@pytest.fixture
def store(tmp_path):
    return CatalogStore(str(tmp_path / "cat"))


class TestThreadedWriters:
    def test_threaded_object_writes_one_shard(self, store):
        fingerprints = same_shard_fingerprints(16)
        entries = {fp: {"c": make_entry({fp})} for fp in fingerprints}

        def write(fp):
            # A fresh handle per thread, like independent builders.
            CatalogStore(store.root).write_object(fp, {"name": fp}, entries[fp])

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(write, fingerprints))

        assert store.list_objects() == sorted(fingerprints)
        shard_dir = store._object_shard_dir(fingerprints[0])
        recorded = store._read_shard_section(shard_dir, "objects")
        # The protocol's whole point: no writer dropped another's entry.
        assert set(recorded) == set(fingerprints)
        report = store.verify()
        assert report["problems"] == []
        assert report["objects"] == len(fingerprints)

    def test_threaded_profile_writes_merge(self, store):
        base = "basefp"

        def write(i):
            CatalogStore(store.root).write_profiles(
                base, {f"key{i}": np.arange(3, dtype=float) + i}
            )

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(write, range(12)))

        loaded = store.read_profiles(base)
        # Merging writes: every concurrent flush survives.
        assert set(loaded) == {f"key{i}" for i in range(12)}
        assert store.verify()["problems"] == []

    def test_write_profiles_replace_mode(self, store):
        store.write_profiles("b", {"old": np.zeros(2)})
        store.write_profiles("b", {"new": np.ones(2)}, merge=False)
        assert set(store.read_profiles("b")) == {"new"}


def _object_writer(root, fingerprints):
    store = CatalogStore(root)
    for fp in fingerprints:
        store.write_object(fp, {"name": fp}, {"c": make_entry({fp})})
        store.write_profiles(fp, {"k": np.full(4, 1.0)})


def _catalog_builder(root, tables):
    catalog = Catalog.open(root, num_perm=8, bands=4)
    catalog.refresh(
        [Table(name, {"c": values}) for name, values in tables.items()]
    )
    catalog.save()


class TestProcessWriters:
    def test_multiprocess_store_writers(self, store):
        fingerprints = same_shard_fingerprints(24)
        chunks = [fingerprints[i::4] for i in range(4)]
        run_ok([(_object_writer, (store.root, chunk)) for chunk in chunks])

        assert store.list_objects() == sorted(fingerprints)
        shard_dir = store._object_shard_dir(fingerprints[0])
        assert set(store._read_shard_section(shard_dir, "objects")) == set(
            fingerprints
        )
        report = store.verify()
        assert report["problems"] == []
        for fp in fingerprints:
            _meta, entries = store.read_object(fp)
            assert entries["c"].distinct == frozenset({fp})
            assert set(store.read_profiles(fp)) == {"k"}

    def test_multiprocess_catalog_builds_merge(self, tmp_path):
        """Two processes index disjoint corpus slices into one store;
        both saves survive (union manifest), and the catalog verifies."""
        root = str(tmp_path / "cat")
        slices = [
            {f"a{i}": [f"v{i}", f"w{i}"] for i in range(5)},
            {f"b{i}": [f"x{i}", f"y{i}"] for i in range(5)},
        ]
        # Create the store first so both builders adopt one config
        # instead of racing the creation itself.
        Catalog.open(root, num_perm=8, bands=4).save()
        run_ok([(_catalog_builder, (root, tables)) for tables in slices])

        manifest = CatalogStore(root).read_manifest()
        expected = {name for tables in slices for name in tables}
        assert set(manifest["tables"]) == expected
        catalog = Catalog.load(root)
        report = catalog.verify()
        assert report["problems"] == []
        assert report["tables"] == len(expected)

    def test_peer_removal_not_resurrected(self, tmp_path):
        """A writer that merely carries a table forward must honor a
        peer's removal of it — resurrecting the name would leave the
        manifest pointing at a gc'd object."""
        root = str(tmp_path / "cat")
        t1 = Table("t1", {"c": ["a", "b"]})
        t2 = Table("t2", {"c": ["x", "y"]})
        seeded = Catalog.open(root, num_perm=8, bands=4)
        seeded.refresh([t1, t2])
        seeded.save()

        writer_a = Catalog.load(root)
        writer_b = Catalog.load(root)  # both carry t1+t2 from the save
        writer_a.refresh([t1])  # drops t2
        writer_a.save()
        writer_a.gc()  # t2's object reclaimed
        writer_b.save()  # stale carrier: must not bring t2's name back

        manifest = CatalogStore(root).read_manifest()
        assert set(manifest["tables"]) == {"t1"}
        assert Catalog.load(root).verify()["problems"] == []


def _crashing_writer(root, fingerprint):
    store = CatalogStore(root)
    store.fault_hook = exit_hook("shard-log-appended")
    store.write_object(fingerprint, {"name": fingerprint}, {"c": make_entry({"v"})})


class TestCrashSafety:
    def test_writer_dies_between_append_and_rename(self, store):
        """The delta reaches the log, the writer dies before the
        manifest rename — the shard must read back consistent (the log
        replays) and the next writer compacts."""
        first, second = same_shard_fingerprints(2)
        shard_dir = store._object_shard_dir(first)

        with crash_at(store, "shard-log-appended"):
            with pytest.raises(InjectedCrash):
                store.write_object(
                    first, {"name": first}, {"c": make_entry({"v"})}
                )

        # The data file landed and the appended-but-uncompacted delta is
        # visible through log replay.
        log_path = store._shard_log_path(shard_dir)
        assert os.path.exists(log_path)
        assert store.has_object(first)
        record = store._read_shard_section(shard_dir, "objects")[first]
        assert store_module._record_codec(record) == 2
        assert store.verify()["problems"] == []

        # The next writer in the shard compacts: log cleared, both
        # entries durable in the base manifest.
        store.write_object(second, {"name": second}, {"c": make_entry({"w"})})
        assert not os.path.exists(log_path)
        assert set(store._read_shard_section(shard_dir, "objects")) == {
            first,
            second,
        }
        assert store.verify()["problems"] == []

    def test_killed_writer_process_leaves_consistent_shard(self, store):
        """Same scenario with a real process kill (os._exit), so nothing
        after the append — no finally blocks, no interpreter teardown —
        runs in the writer."""
        first, second = same_shard_fingerprints(2)
        run_killed(_crashing_writer, (store.root, first))

        shard_dir = store._object_shard_dir(first)
        assert os.path.exists(store._shard_log_path(shard_dir))
        record = store._read_shard_section(shard_dir, "objects")[first]
        assert store_module._record_codec(record) == 2
        assert store.read_object(first)[0] == {"name": first}
        assert store.verify()["problems"] == []

        store.write_object(second, {"name": second}, {"c": make_entry({"w"})})
        assert not os.path.exists(store._shard_log_path(shard_dir))
        assert set(store._read_shard_section(shard_dir, "objects")) == {
            first,
            second,
        }

    def test_torn_log_tail_is_skipped(self, store):
        """A partial last line (writer killed mid-append) must not hide
        the complete records before it."""
        fingerprint = same_shard_fingerprints(1)[0]
        store.write_object(
            fingerprint, {"name": fingerprint}, {"c": make_entry({"v"})}
        )
        shard_dir = store._object_shard_dir(fingerprint)
        torn_log(
            store._shard_log_path(shard_dir),
            [{"section": "objects", "op": "set", "key": "extra", "value": 2}],
            torn_tail='{"section": "objects", "op": "se',  # torn mid-record
        )
        recorded = store._read_shard_section(shard_dir, "objects")
        assert store_module._record_codec(recorded[fingerprint]) == 2
        assert recorded["extra"] == 2  # complete log record applies

    def test_log_delete_record_applies(self, store):
        fingerprint = same_shard_fingerprints(1)[0]
        store.write_object(
            fingerprint, {"name": fingerprint}, {"c": make_entry({"v"})}
        )
        shard_dir = store._object_shard_dir(fingerprint)
        torn_log(
            store._shard_log_path(shard_dir),
            [{"section": "objects", "op": "del", "key": fingerprint}],
        )
        assert fingerprint not in store._read_shard_section(shard_dir, "objects")
