"""Tests for the statistical primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    entropy_discrete,
    fisher_z_pvalue,
    mutual_information,
    partial_correlation,
    pearson,
    spearman,
)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_input_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_nan_rows_dropped(self):
        x = [1.0, 2.0, np.nan, 4.0]
        y = [1.0, 2.0, 100.0, 4.0]
        assert pearson(x, y) == pytest.approx(1.0)

    def test_too_few_samples(self):
        assert pearson([1.0], [2.0]) == 0.0

    @given(
        st.lists(st.floats(-100, 100), min_size=3, max_size=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_bounded(self, xs):
        rng = np.random.default_rng(0)
        ys = rng.normal(size=len(xs))
        assert -1.0 <= pearson(xs, ys) <= 1.0

    @given(st.lists(st.floats(-50, 50), min_size=3, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, xs):
        rng = np.random.default_rng(1)
        ys = rng.normal(size=len(xs))
        assert pearson(xs, ys) == pytest.approx(pearson(ys, list(xs)))


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = np.arange(1.0, 11.0)
        assert spearman(x, x**3) == pytest.approx(1.0)

    def test_ties_handled(self):
        assert -1.0 <= spearman([1, 1, 2, 2], [4, 4, 1, 1]) <= 1.0

    def test_degenerate(self):
        assert spearman([], []) == 0.0


class TestEntropy:
    def test_uniform_two_classes(self):
        assert entropy_discrete([0, 1]) == pytest.approx(np.log(2))

    def test_single_class_zero(self):
        assert entropy_discrete([7, 7, 7]) == 0.0

    def test_more_classes_more_entropy(self):
        assert entropy_discrete([0, 1, 2, 3]) > entropy_discrete([0, 0, 1, 1])


class TestMutualInformation:
    def test_identical_high(self):
        x = np.random.default_rng(0).normal(size=200)
        assert mutual_information(x, x) > 0.5

    def test_independent_low(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=500)
        y = rng.normal(size=500)
        assert mutual_information(x, y) < 0.2

    def test_nonnegative(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            assert mutual_information(rng.normal(size=50), rng.normal(size=50)) >= 0.0

    def test_tiny_sample_zero(self):
        assert mutual_information([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_dependence_detected(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=300)
        y = x + rng.normal(scale=0.1, size=300)
        z = rng.normal(size=300)
        assert mutual_information(x, y) > mutual_information(x, z)


class TestPartialCorrelation:
    def test_confounder_removed(self):
        rng = np.random.default_rng(0)
        z = rng.normal(size=500)
        x = z + rng.normal(scale=0.1, size=500)
        y = z + rng.normal(scale=0.1, size=500)
        data = np.column_stack([x, y, z])
        raw = partial_correlation(data, 0, 1)
        conditioned = partial_correlation(data, 0, 1, cond=(2,))
        assert raw > 0.9
        assert abs(conditioned) < 0.2

    def test_direct_link_survives(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=500)
        y = x + rng.normal(scale=0.2, size=500)
        z = rng.normal(size=500)
        data = np.column_stack([x, y, z])
        assert partial_correlation(data, 0, 1, cond=(2,)) > 0.8


class TestFisherZ:
    def test_strong_correlation_significant(self):
        assert fisher_z_pvalue(0.9, 100) < 0.001

    def test_zero_correlation_not_significant(self):
        assert fisher_z_pvalue(0.0, 100) == pytest.approx(1.0)

    def test_small_sample_conservative(self):
        assert fisher_z_pvalue(0.9, 3) == 1.0

    def test_pvalue_in_unit_interval(self):
        for r in (-0.99, -0.5, 0.0, 0.5, 0.99):
            p = fisher_z_pvalue(r, 30)
            assert 0.0 <= p <= 1.0

    def test_more_samples_more_significant(self):
        assert fisher_z_pvalue(0.3, 200) < fisher_z_pvalue(0.3, 20)
