"""Tests for the shared bounded-LRU mapping."""

import pytest

from repro.utils import LruDict


class TestLruDict:
    def test_put_get_roundtrip(self):
        lru = LruDict(capacity=3)
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.get("missing") is None
        assert lru.get("missing", 42) == 42
        assert "a" in lru and len(lru) == 1

    def test_eviction_is_least_recently_used(self):
        lru = LruDict(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh a's recency
        lru.put("c", 3)  # evicts b, not a
        assert "a" in lru and "c" in lru
        assert "b" not in lru

    def test_overwrite_does_not_evict(self):
        lru = LruDict(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)  # replace, still 2 entries
        assert len(lru) == 2
        assert lru.get("a") == 10
        assert lru.get("b") == 2

    def test_unbounded_when_capacity_none(self):
        lru = LruDict(capacity=None)
        for i in range(100):
            lru.put(i, i)
        assert len(lru) == 100

    def test_clear(self):
        lru = LruDict(capacity=2)
        lru.put("a", 1)
        lru.clear()
        assert len(lru) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            LruDict(capacity=0)


class TestByteBudget:
    def test_budget_evicts_oldest_first(self):
        lru = LruDict(max_bytes=100)
        assert lru.put("a", 1, size=40)
        assert lru.put("b", 2, size=40)
        assert lru.put("c", 3, size=40)  # evicts a (40+40+40 > 100)
        assert "a" not in lru
        assert "b" in lru and "c" in lru
        assert lru.total_bytes == 80

    def test_recency_protects_under_budget_pressure(self):
        lru = LruDict(max_bytes=100)
        lru.put("a", 1, size=40)
        lru.put("b", 2, size=40)
        assert lru.get("a") == 1  # refresh a
        lru.put("c", 3, size=40)  # evicts b, the least recent
        assert "a" in lru and "c" in lru
        assert "b" not in lru

    def test_oversized_entry_rejected(self):
        lru = LruDict(max_bytes=50)
        lru.put("a", 1, size=30)
        assert not lru.put("big", 2, size=51)
        assert "big" not in lru
        assert "a" in lru  # nothing was evicted for a hopeless insert
        assert lru.total_bytes == 30
        # A rejected oversized update leaves the old value in place.
        assert not lru.put("a", 99, size=51)
        assert lru.get("a") == 1
        assert lru.total_bytes == 30

    def test_overwrite_replaces_size(self):
        lru = LruDict(max_bytes=100)
        lru.put("a", 1, size=60)
        lru.put("a", 2, size=20)
        assert lru.total_bytes == 20
        assert lru.get("a") == 2

    def test_clear_resets_bytes(self):
        lru = LruDict(max_bytes=100)
        lru.put("a", 1, size=60)
        lru.clear()
        assert lru.total_bytes == 0
        assert lru.put("b", 2, size=100)

    def test_capacity_and_bytes_compose(self):
        lru = LruDict(capacity=2, max_bytes=100)
        lru.put("a", 1, size=10)
        lru.put("b", 2, size=10)
        lru.put("c", 3, size=10)  # capacity bound evicts a
        assert len(lru) == 2
        assert "a" not in lru
        assert lru.total_bytes == 20

    def test_invalid_max_bytes(self):
        with pytest.raises(ValueError, match="max_bytes"):
            LruDict(max_bytes=0)
