"""Tests for the shared bounded-LRU mapping."""

import pytest

from repro.utils import LruDict


class TestLruDict:
    def test_put_get_roundtrip(self):
        lru = LruDict(capacity=3)
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.get("missing") is None
        assert lru.get("missing", 42) == 42
        assert "a" in lru and len(lru) == 1

    def test_eviction_is_least_recently_used(self):
        lru = LruDict(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh a's recency
        lru.put("c", 3)  # evicts b, not a
        assert "a" in lru and "c" in lru
        assert "b" not in lru

    def test_overwrite_does_not_evict(self):
        lru = LruDict(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)  # replace, still 2 entries
        assert len(lru) == 2
        assert lru.get("a") == 10
        assert lru.get("b") == 2

    def test_unbounded_when_capacity_none(self):
        lru = LruDict(capacity=None)
        for i in range(100):
            lru.put(i, i)
        assert len(lru) == 100

    def test_clear(self):
        lru = LruDict(capacity=2)
        lru.put("a", 1)
        lru.clear()
        assert len(lru) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            LruDict(capacity=0)
