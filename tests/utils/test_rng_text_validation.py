"""Tests for RNG plumbing, tokenization and validation helpers."""

import numpy as np
import pytest

from repro.utils import (
    check_fraction,
    check_in_choices,
    check_non_negative,
    check_positive,
    ensure_rng,
    normalize_token,
    spawn_rng,
    tokenize,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = ensure_rng(42).integers(0, 100, 5)
        b = ensure_rng(42).integers(0, 100, 5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_bad_seed_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_single(self):
        child = spawn_rng(ensure_rng(0))
        assert isinstance(child, np.random.Generator)

    def test_spawn_many_independent(self):
        children = spawn_rng(ensure_rng(0), 3)
        assert len(children) == 3
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_deterministic(self):
        a = spawn_rng(ensure_rng(1)).integers(0, 10**9)
        b = spawn_rng(ensure_rng(1)).integers(0, 10**9)
        assert a == b


class TestText:
    def test_tokenize_splits_punctuation(self):
        assert tokenize("taxi_trips-2019") == ["taxi", "trips", "2019"]

    def test_tokenize_lowercases(self):
        assert tokenize("Crime Stats") == ["crime", "stats"]

    def test_tokenize_none(self):
        assert tokenize(None) == []

    def test_tokenize_numbers_kept(self):
        assert tokenize("zip 60601") == ["zip", "60601"]

    def test_normalize(self):
        assert normalize_token("  HeLLo ") == "hello"


class TestValidation:
    def test_fraction_ok(self):
        assert check_fraction(0.5, "x") == 0.5

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            check_fraction(1.5, "x")
        with pytest.raises(ValueError):
            check_fraction(-0.1, "x")

    def test_positive(self):
        assert check_positive(3, "x") == 3
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_non_negative(self):
        assert check_non_negative(0, "x") == 0
        with pytest.raises(ValueError):
            check_non_negative(-1, "x")

    def test_choices(self):
        assert check_in_choices("a", "x", {"a", "b"}) == "a"
        with pytest.raises(ValueError):
            check_in_choices("c", "x", {"a", "b"})
