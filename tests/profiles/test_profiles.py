"""Tests for the individual data profiles."""

import numpy as np
import pytest

from repro.dataframe import Table
from repro.profiles import (
    CorrelationProfile,
    EmbeddingSimilarityProfile,
    MetadataProfile,
    MutualInformationProfile,
    OverlapProfile,
    ProfileContext,
    RandomProfile,
    TokenEmbedder,
)
from repro.profiles.embedding import cosine_similarity


def make_context(base, values, candidate=None, overlap=1.0, name="aug"):
    return ProfileContext(
        base=base,
        column_name=name,
        column_values=list(values),
        candidate_table=candidate or Table("cand", {"aug": list(values)}),
        overlap_fraction=overlap,
    )


@pytest.fixture
def base():
    rng = np.random.default_rng(0)
    price = rng.normal(100, 20, size=200)
    return Table(
        "houses",
        {
            "zipcode": [str(60600 + i % 10) for i in range(200)],
            "price": price.tolist(),
        },
        source="open-data",
    )


class TestCorrelationProfile:
    def test_correlated_column_high(self, base):
        values = [2.0 * p + 1.0 for p in base.column("price")]
        score = CorrelationProfile().compute(make_context(base, values))
        assert score > 0.95

    def test_independent_column_low(self, base):
        rng = np.random.default_rng(9)
        values = rng.normal(size=200).tolist()
        score = CorrelationProfile().compute(make_context(base, values))
        assert score < 0.35

    def test_all_missing_zero(self, base):
        score = CorrelationProfile().compute(make_context(base, [None] * 200))
        assert score == 0.0

    def test_in_unit_interval(self, base):
        rng = np.random.default_rng(1)
        for _ in range(3):
            score = CorrelationProfile().compute(
                make_context(base, rng.normal(size=200).tolist())
            )
            assert 0.0 <= score <= 1.0


class TestMutualInformationProfile:
    def test_dependent_beats_independent(self, base):
        price = np.array(base.column("price"))
        dependent = (price**2).tolist()
        rng = np.random.default_rng(5)
        independent = rng.normal(size=200).tolist()
        p = MutualInformationProfile()
        assert p.compute(make_context(base, dependent)) > p.compute(
            make_context(base, independent)
        )

    def test_bins_validation(self):
        with pytest.raises(ValueError):
            MutualInformationProfile(bins=1)

    def test_all_missing_zero(self, base):
        assert MutualInformationProfile().compute(
            make_context(base, [None] * 200)
        ) == 0.0


class TestEmbedding:
    def test_token_embedding_deterministic(self):
        e = TokenEmbedder()
        assert np.array_equal(e.embed_token("crime"), e.embed_token("crime"))

    def test_token_embedding_unit_norm(self):
        e = TokenEmbedder()
        assert np.linalg.norm(e.embed_token("taxi")) == pytest.approx(1.0)

    def test_different_tokens_differ(self):
        e = TokenEmbedder()
        assert not np.array_equal(e.embed_token("a"), e.embed_token("b"))

    def test_empty_tokens_zero_vector(self):
        e = TokenEmbedder(dim=8)
        assert np.array_equal(e.embed_tokens([]), np.zeros(8))

    def test_cosine_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_similar_tables_closer_than_dissimilar(self, base):
        similar = Table(
            "house_prices_extra",
            {"zipcode": ["1"], "price": [1.0], "house": ["x"]},
        )
        dissimilar = Table(
            "penguin_census",
            {"flipper": [1.0], "species": ["adelie"]},
        )
        profile = EmbeddingSimilarityProfile()
        s_sim = profile.compute(make_context(base, [1.0] * 200, candidate=similar))
        s_dis = profile.compute(make_context(base, [1.0] * 200, candidate=dissimilar))
        assert s_sim > s_dis

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            TokenEmbedder(dim=1)


class TestMetadataProfile:
    def test_shared_attributes_raise_score(self, base):
        shared = Table("t1", {"zipcode": [1], "price": [2]}, source="other")
        disjoint = Table("t2", {"foo": [1], "bar": [2]}, source="other")
        p = MetadataProfile()
        assert p.compute(make_context(base, [1.0] * 200, candidate=shared)) > p.compute(
            make_context(base, [1.0] * 200, candidate=disjoint)
        )

    def test_same_source_bonus(self, base):
        same = Table("t", {"foo": [1]}, source="open-data")
        other = Table("t", {"foo": [1]}, source="kaggle")
        p = MetadataProfile()
        s_same = p.compute(make_context(base, [1.0] * 200, candidate=same))
        s_other = p.compute(make_context(base, [1.0] * 200, candidate=other))
        assert s_same == pytest.approx(s_other + 0.25)


class TestOverlapProfile:
    def test_passthrough(self, base):
        assert OverlapProfile().compute(make_context(base, [1.0] * 200, overlap=0.4)) == 0.4

    def test_clipped(self, base):
        assert OverlapProfile().compute(make_context(base, [1.0] * 200, overlap=1.7)) == 1.0


class TestRandomProfile:
    def test_deterministic_per_augmentation(self, base):
        p = RandomProfile(index=0, seed=1)
        ctx = make_context(base, [1.0] * 200, name="x")
        assert p.compute(ctx) == p.compute(ctx)

    def test_varies_across_augmentations(self, base):
        p = RandomProfile(index=0, seed=1)
        a = p.compute(make_context(base, [1.0] * 200, name="x"))
        b = p.compute(make_context(base, [1.0] * 200, name="y"))
        assert a != b

    def test_independent_indices_differ(self, base):
        ctx = make_context(base, [1.0] * 200, name="x")
        assert RandomProfile(0, seed=1).compute(ctx) != RandomProfile(1, seed=1).compute(ctx)
