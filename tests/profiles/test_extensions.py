"""Tests for the extension profiles (§II-C extensions)."""

import numpy as np
import pytest

from repro.dataframe import Table
from repro.profiles import ProfileContext
from repro.profiles.extensions import (
    AnomalyProfile,
    CompletenessProfile,
    FairnessProfile,
    SpearmanProfile,
    extended_registry,
)


@pytest.fixture
def base():
    rng = np.random.default_rng(0)
    return Table(
        "t",
        {
            "age": rng.uniform(20, 70, size=150).tolist(),
            "score": rng.normal(size=150).tolist(),
        },
    )


def ctx(base, values, name="aug"):
    return ProfileContext(
        base=base,
        column_name=name,
        column_values=list(values),
        candidate_table=Table("cand", {name: list(values)}),
        overlap_fraction=1.0,
    )


class TestSpearman:
    def test_monotone_nonlinear_detected(self, base):
        score = np.array(base.column("score"))
        cubed = (score**3).tolist()
        assert SpearmanProfile().compute(ctx(base, cubed)) > 0.95

    def test_independent_low(self, base):
        rng = np.random.default_rng(5)
        assert SpearmanProfile().compute(
            ctx(base, rng.normal(size=150).tolist())
        ) < 0.35

    def test_all_missing(self, base):
        assert SpearmanProfile().compute(ctx(base, [None] * 150)) == 0.0


class TestAnomaly:
    def test_clean_column_high(self, base):
        rng = np.random.default_rng(1)
        assert AnomalyProfile().compute(
            ctx(base, rng.normal(size=150).tolist())
        ) >= 0.95

    def test_outlier_heavy_column_lower(self, base):
        rng = np.random.default_rng(2)
        values = rng.normal(size=150)
        values[:20] = 500.0  # gross outliers
        clean = AnomalyProfile().compute(ctx(base, rng.normal(size=150).tolist()))
        dirty = AnomalyProfile().compute(ctx(base, values.tolist()))
        assert dirty < clean

    def test_constant_column_perfect(self, base):
        assert AnomalyProfile().compute(ctx(base, [5.0] * 150)) == 1.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            AnomalyProfile(z_threshold=0)


class TestCompleteness:
    def test_full_column(self, base):
        assert CompletenessProfile().compute(ctx(base, [1.0] * 150)) == 1.0

    def test_half_missing(self, base):
        values = [1.0] * 75 + [None] * 75
        assert CompletenessProfile().compute(ctx(base, values)) == pytest.approx(0.5)


class TestFairness:
    def test_age_proxy_scores_low(self, base):
        proxy = [a * 1.01 for a in base.column("age")]
        assert FairnessProfile("age").compute(ctx(base, proxy)) < 0.1

    def test_independent_scores_high(self, base):
        rng = np.random.default_rng(3)
        values = rng.normal(size=150).tolist()
        assert FairnessProfile("age").compute(ctx(base, values)) > 0.7

    def test_missing_sensitive_zero(self, base):
        assert FairnessProfile("ghost").compute(ctx(base, [1.0] * 150)) == 0.0


class TestExtendedRegistry:
    def test_without_sensitive(self):
        registry = extended_registry()
        assert "spearman" in registry.names
        assert "anomaly" in registry.names
        assert "completeness" in registry.names
        assert "fairness" not in registry.names

    def test_with_sensitive(self):
        registry = extended_registry(sensitive_column="age")
        assert "fairness" in registry.names

    def test_vector_shape(self, base):
        registry = extended_registry(sensitive_column="age")
        vector = registry.compute_vector(ctx(base, [1.0] * 150))
        assert vector.shape == (9,)
        assert np.all((vector >= 0) & (vector <= 1))
