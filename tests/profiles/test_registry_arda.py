"""Tests for the profile registry and the ARDA scorer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import Table
from repro.profiles import (
    ArdaImportanceProfile,
    ArdaScorer,
    ProfileContext,
    ProfileRegistry,
    RandomProfile,
    default_registry,
)


@pytest.fixture
def base():
    rng = np.random.default_rng(0)
    signal = rng.normal(size=150)
    label = (signal > 0).astype(int)
    return Table(
        "schools",
        {
            "id": [str(i) for i in range(150)],
            "noise_feature": rng.normal(size=150).tolist(),
            "signal": signal.tolist(),
            "passed": label.tolist(),
        },
    )


def make_context(base, values, name="aug"):
    return ProfileContext(
        base=base,
        column_name=name,
        column_values=list(values),
        candidate_table=Table("cand", {name: list(values)}),
        overlap_fraction=1.0,
    )


class TestRegistry:
    def test_default_has_five_profiles(self):
        reg = default_registry()
        assert len(reg) == 5
        assert reg.names == [
            "correlation",
            "mutual_information",
            "semantic_embedding",
            "metadata",
            "overlap",
        ]

    def test_vector_in_unit_cube(self, base):
        reg = default_registry()
        rng = np.random.default_rng(0)
        vec = reg.compute_vector(make_context(base, rng.normal(size=150).tolist()))
        assert vec.shape == (5,)
        assert np.all(vec >= 0.0) and np.all(vec <= 1.0)

    def test_add_duplicate_rejected(self):
        reg = default_registry()
        with pytest.raises(ValueError):
            reg.add(reg._profiles[0])

    def test_remove(self):
        reg = default_registry().remove("overlap")
        assert "overlap" not in reg.names
        assert len(reg) == 4

    def test_remove_unknown(self):
        with pytest.raises(KeyError):
            default_registry().remove("nope")

    def test_subset_order(self):
        reg = default_registry().subset(["overlap", "correlation"])
        assert reg.names == ["overlap", "correlation"]

    def test_subset_unknown(self):
        with pytest.raises(KeyError):
            default_registry().subset(["nope"])

    def test_with_random_profiles(self):
        reg = default_registry().with_random_profiles(3, seed=1)
        assert len(reg) == 8
        assert "random_2" in reg.names

    def test_empty_registry_rejects_compute(self, base):
        with pytest.raises(RuntimeError):
            ProfileRegistry([]).compute_vector(make_context(base, [1.0] * 150))

    def test_duplicate_at_construction(self):
        with pytest.raises(ValueError):
            ProfileRegistry([RandomProfile(0), RandomProfile(0)])

    @given(st.integers(0, 5))
    @settings(max_examples=10, deadline=None)
    def test_random_profile_count(self, n):
        assert len(default_registry().with_random_profiles(n)) == 5 + n


class TestArda:
    def test_informative_scores_higher_than_noise(self, base):
        rng = np.random.default_rng(1)
        signal = np.array(base.column("signal"))
        informative = (signal * 3.0 + rng.normal(scale=0.05, size=150)).tolist()
        junk = rng.normal(size=150).tolist()
        scorer = ArdaScorer(base.drop_columns(["signal"]), "passed", seed=0)
        scores = scorer.score_columns({"good": informative, "junk": junk})
        assert scores["good"] > scores["junk"]

    def test_scores_in_unit_interval(self, base):
        rng = np.random.default_rng(2)
        columns = {f"c{i}": rng.normal(size=150).tolist() for i in range(5)}
        scores = ArdaScorer(base, "passed", seed=0).score_columns(columns)
        assert all(0.0 <= s <= 1.0 for s in scores.values())

    def test_regression_mode(self, base):
        rng = np.random.default_rng(3)
        scorer = ArdaScorer(base, "signal", mode="regression", seed=0)
        scores = scorer.score_columns({"c": rng.normal(size=150).tolist()})
        assert "c" in scores

    def test_unknown_target_rejected(self, base):
        with pytest.raises(KeyError):
            ArdaScorer(base, "nope")

    def test_profile_lookup(self, base):
        profile = ArdaImportanceProfile({"aug": 0.8})
        assert profile.compute(make_context(base, [1.0] * 150, name="aug")) == 0.8

    def test_profile_missing_key_zero(self, base):
        profile = ArdaImportanceProfile({})
        assert profile.compute(make_context(base, [1.0] * 150, name="aug")) == 0.0
