"""Sharded catalog at corpus scale: latency flatness + codec footprint.

The production claims of the sharded store, measured 200 → 2000 tables:

1. **Warm-start latency holds flat per table** — hydrating a saved
   catalog costs O(1) per table regardless of store size (hash-prefix
   shards keep directory operations and manifests bounded), so the
   per-table warm-start cost at 2000 tables must stay within 1.5× of the
   200-table figure.
2. **Catalog-backed stats latency holds flat per table** — the Table-I
   report (``corpus_stats``) runs from disk artifacts alone, and its
   per-table cost must scale the same way.
3. **The binary codec shrinks objects ≥ 3×** versus the legacy JSON
   encoding of identical content.
4. **A layout-v1 store opens transparently** with byte-identical
   ``prepare_candidates`` output (the warm-start bench already pins
   v2-warm == cold, so v1-warm == v2-warm closes the loop).
"""

import contextlib
import gc
import json
import os
import shutil
import time

import numpy as np

from benchmarks.common import report, scaled
from repro import DiscoveryEngine
from repro.catalog import Catalog, CatalogStore
from repro.catalog.store import CODECS
from repro.data import generate_corpus
from repro.data.generator import make_keys
from repro.dataframe.table import Table

SEED = 0


def _base_table(n_rows: int = 150, n_pools: int = 4) -> Table:
    rng = np.random.default_rng(SEED)
    columns = {
        f"key_{p}": make_keys(n_rows, prefix=f"k{p}_", start=0)
        for p in range(n_pools)
    }
    columns["signal"] = rng.normal(size=n_rows).tolist()
    return Table("bench_base", columns)


def _downgrade_to_v1(store: CatalogStore) -> None:
    """Rewrite a v2 store as the PR-1 flat JSON layout (objects +
    manifest; the snapshot format never changed)."""
    for fingerprint in store.list_objects():
        meta, entries = store.read_object(fingerprint)
        with open(store._legacy_object_path(fingerprint), "wb") as handle:
            handle.write(CODECS[1].encode(meta, entries))
    objects_dir = os.path.join(store.root, "objects")
    for name in os.listdir(objects_dir):
        path = os.path.join(objects_dir, name)
        if os.path.isdir(path):
            shutil.rmtree(path)
    manifest = json.load(open(store.manifest_path))
    manifest["version"] = 1
    json.dump(manifest, open(store.manifest_path, "w"), indent=1, sort_keys=True)


@contextlib.contextmanager
def _gc_paused():
    """Cyclic-GC pause for timed sections: full collections are O(live
    heap), so with a 2000-table corpus resident they contaminate the
    per-table latency of whatever phase they happen to land in.  The
    flatness claim is about store structure, not interpreter heap size."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _measure(n_tables: int, root: str) -> dict:
    corpus = {t.name: t for t in generate_corpus(n_tables, seed=SEED)}
    start = time.perf_counter()
    catalog = Catalog(CatalogStore(root), min_containment=0.3, seed=SEED)
    catalog.refresh(corpus)
    catalog.save()
    build_time = time.perf_counter() - start

    store = catalog.store
    binary_bytes = json_bytes = 0
    for fingerprint in store.list_objects():
        binary_bytes += os.path.getsize(store._object_path(fingerprint))
        meta, entries = store.read_object(fingerprint)
        json_bytes += len(CODECS[1].encode(meta, entries))

    # Warm start (fresh-process simulation): best of 3 so a transient
    # load spike doesn't distort the flatness ratio.
    warm_time = float("inf")
    with _gc_paused():
        for _rep in range(3):
            start = time.perf_counter()
            loaded = Catalog.load(root, corpus=corpus)
            warm_time = min(warm_time, time.perf_counter() - start)
            assert loaded.computed_columns == 0, "warm start re-signed columns"

    # Catalog-backed Table-I report, from disk artifacts alone.
    stats_time = float("inf")
    with _gc_paused():
        for _rep in range(3):
            fresh = Catalog.load(root)  # no corpus attached at all
            start = time.perf_counter()
            stats = fresh.corpus_stats()
            stats_time = min(stats_time, time.perf_counter() - start)
    assert stats["tables"] == n_tables

    return {
        "n_tables": n_tables,
        "corpus": corpus,
        "build": build_time,
        "warm": warm_time,
        "stats": stats_time,
        "joinable": stats["joinable_columns"],
        "binary_bytes": binary_bytes,
        "json_bytes": json_bytes,
    }


def test_catalog_shard_scale(benchmark, tmp_path):
    sizes = [scaled(200), scaled(2000)]
    base = _base_table()

    def run() -> dict:
        results = [
            _measure(n, str(tmp_path / f"cat_{n}")) for n in sizes
        ]

        # v1 compatibility at the small size: byte-identical output.
        small = results[0]
        v2_root = str(tmp_path / f"cat_{small['n_tables']}")
        v1_root = str(tmp_path / "cat_v1")
        shutil.copytree(v2_root, v1_root)
        _downgrade_to_v1(CatalogStore(v1_root))
        v2_engine = DiscoveryEngine(
            corpus=small["corpus"],
            catalog=Catalog.load(v2_root, corpus=small["corpus"]),
        )
        v2_candidates = v2_engine.prepare(base, seed=SEED)
        v1_catalog = Catalog.load(v1_root, corpus=small["corpus"])
        v1_engine = DiscoveryEngine(corpus=small["corpus"], catalog=v1_catalog)
        v1_candidates = v1_engine.prepare(base, seed=SEED)
        assert v1_catalog.computed_columns == 0, "v1 store was re-signed"
        assert [c.aug_id for c in v1_candidates] == [
            c.aug_id for c in v2_candidates
        ]
        for v2_c, v1_c in zip(v2_candidates, v1_candidates, strict=True):
            assert np.array_equal(v2_c.profile_vector, v1_c.profile_vector)
        for entry in results:
            entry.pop("corpus")
        return {"results": results, "v1_candidates": len(v1_candidates)}

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    results = r["results"]
    small, large = results[0], results[-1]
    per_table = lambda entry, key: entry[key] / entry["n_tables"]  # noqa: E731
    warm_ratio = per_table(large, "warm") / per_table(small, "warm")
    stats_ratio = per_table(large, "stats") / per_table(small, "stats")
    size_ratio = large["json_bytes"] / max(1, large["binary_bytes"])

    lines = [
        f"{'tables':>8} {'build':>9} {'warm':>9} {'warm/tbl':>10} "
        f"{'stats':>9} {'stats/tbl':>10} {'bin KB':>9} {'json KB':>9}",
    ]
    for entry in results:
        lines.append(
            f"{entry['n_tables']:8d} {entry['build']:8.2f}s "
            f"{entry['warm']:8.3f}s {per_table(entry, 'warm') * 1e3:9.4f}ms "
            f"{entry['stats']:8.3f}s {per_table(entry, 'stats') * 1e3:9.4f}ms "
            f"{entry['binary_bytes'] / 1024:9.0f} {entry['json_bytes'] / 1024:9.0f}"
        )
    lines += [
        f"warm-start per-table latency ratio {small['n_tables']}→"
        f"{large['n_tables']} tables: {warm_ratio:.2f}x (target <= 1.5x)",
        f"stats per-table latency ratio: {stats_ratio:.2f}x (target <= 1.5x)",
        f"binary objects {size_ratio:.2f}x smaller than JSON (target >= 3x)",
        f"v1 store served {r['v1_candidates']} byte-identical candidates "
        "without re-signing",
    ]
    report("catalog_shard_scale", lines)

    assert warm_ratio <= 1.5, f"warm-start latency not flat: {warm_ratio:.2f}x"
    assert stats_ratio <= 1.5, f"stats latency not flat: {stats_ratio:.2f}x"
    assert size_ratio >= 3.0, f"binary only {size_ratio:.2f}x smaller than JSON"
