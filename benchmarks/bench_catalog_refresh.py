"""Background catalog refresh: serving latency under a mutating corpus.

Without background maintenance, any table change forces a synchronous
re-fingerprint + re-sign on the next request — the query path pays for
corpus churn.  The :class:`~repro.catalog.CatalogRefresher` moves that
work onto a daemon thread and publishes immutable snapshots the engine
swaps in between requests, so the serving path sees only the (warm,
profile-cached) re-prepare of genuinely changed epochs.

This benchmark drives one engine over a ~500-table corpus (scaled by
``REPRO_SCALE``) that mutates while requests are served, with the
refresher running, and claims three things:

- **p50 latency**: the median ``discover()`` latency over the mutating
  corpus stays within 1.2x of the same request sequence over a static
  corpus (asserted at full scale on >=4 CPUs, reported otherwise);
- **staleness**: every request is served from a snapshot verified
  within the configured ``staleness_budget`` (always asserted);
- **crash safety**: a refresh subprocess killed mid-save (between its
  shard-log append and manifest compaction) leaves a store that
  verifies clean, and the next refresh finishes the job (always
  asserted).
"""

import os
import statistics
import tempfile
import time

from benchmarks.common import SCALE, report, scaled
from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.catalog import Catalog, CatalogRefresher, CatalogStore
from repro.data import housing_scenario
from repro.dataframe.table import Table

#: Latency floor only armed where the hardware and scale are real.
STRICT = (os.cpu_count() or 1) >= 4 and SCALE >= 1.0

N_REQUESTS = 15
MUTATE_EVERY = 3  # corpus mutations between requests (mutating phase)
STALENESS_BUDGET = 5.0
KILLED_EXIT = 17


def _scenario():
    # ~500 repository tables at full scale: the paper-sized corpus a
    # serving engine would actually watch.
    return housing_scenario(
        seed=0,
        n_irrelevant=scaled(470),
        n_erroneous=scaled(12),
        n_traps=scaled(8),
    )


def _mutate(corpus: dict, name: str, round_index: int) -> dict:
    """Replace one repository table with changed content (new Table
    object — the library treats tables as immutable)."""
    table = corpus[name]
    columns = {c: list(table.column(c)) for c in table.column_names}
    victim = table.column_names[-1]
    columns[victim] = [f"r{round_index}-{v}" for v in columns[victim]]
    out = dict(corpus)
    out[name] = Table(name, columns)
    return out


class _Source:
    def __init__(self, corpus):
        self.corpus = dict(corpus)

    def __call__(self):
        return self.corpus


def _request(scenario, seed):
    return DiscoveryRequest(
        base=scenario.base,
        task=scenario.task,
        searcher="metam",
        seed=seed,
        prepare_seed=0,
        config=MetamConfig(theta=0.9, query_budget=5, epsilon=0.1, seed=seed),
    )


def _serve_phase(scenario, root, mutate: bool):
    """Serve N_REQUESTS through a refresher-backed engine; returns
    per-request latencies and the max observed sync staleness."""
    source = _Source(scenario.corpus)
    refresher = CatalogRefresher(
        source, store=root, interval=0.2, staleness_budget=STALENESS_BUDGET
    ).start()
    engine = DiscoveryEngine(refresher=refresher)
    mutable = sorted(
        name for name in scenario.corpus if name != scenario.base.name
    )
    latencies = []
    max_staleness = 0.0
    try:
        for i in range(N_REQUESTS):
            if mutate and i and i % MUTATE_EVERY == 0:
                source.corpus = _mutate(
                    source.corpus, mutable[i % len(mutable)], i
                )
            start = time.perf_counter()
            run = engine.discover(_request(scenario, seed=i))
            latencies.append(time.perf_counter() - start)
            assert run.completed, f"request {i} did not complete"
            # The never-staler-than-budget claim, at every serve point.
            assert engine.last_sync_staleness is not None
            assert engine.last_sync_staleness <= STALENESS_BUDGET, (
                f"served snapshot {engine.last_sync_staleness:.2f}s stale, "
                f"budget {STALENESS_BUDGET}s"
            )
            max_staleness = max(max_staleness, engine.last_sync_staleness)
    finally:
        engine.shutdown()
        refresher.stop()
    return latencies, max_staleness, engine.stats()["snapshot_epoch"]


def _killed_refresh_worker(root, corpus_spec):
    corpus = {
        name: Table(name, {"key": values})
        for name, values in corpus_spec.items()
    }
    store = CatalogStore(root)

    def die(point):
        if point == "shard-log-appended":
            os._exit(KILLED_EXIT)

    store.fault_hook = die
    CatalogRefresher(lambda: corpus, store=store).refresh_now()


def _killed_refresh_phase(tmp) -> bool:
    """Fork a refresh cycle that dies mid-save; the store must verify
    clean and the next refresh must finish the job."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return False  # pragma: no cover - non-POSIX only
    root = os.path.join(tmp, "killed")
    base = {f"t{i}": [f"v{i}", f"w{i}"] for i in range(6)}
    CatalogRefresher(
        lambda: {n: Table(n, {"key": v}) for n, v in base.items()},
        store=root,
        num_perm=8,
        bands=4,
    ).refresh_now()
    changed = dict(base)
    changed["t0"] = ["CHANGED", "w0"]
    ctx = multiprocessing.get_context("fork")
    worker = ctx.Process(target=_killed_refresh_worker, args=(root, changed))
    worker.start()
    worker.join()
    assert worker.exitcode == KILLED_EXIT, (
        f"refresh worker exited {worker.exitcode}, expected {KILLED_EXIT}"
    )
    problems = CatalogStore(root).verify()["problems"]
    assert problems == [], f"store dirty after killed refresh: {problems}"
    snapshot = CatalogRefresher(
        lambda: {n: Table(n, {"key": v}) for n, v in changed.items()},
        store=root,
    ).refresh_now()
    assert set(snapshot.corpus) == set(changed)
    assert Catalog.load(root).verify()["problems"] == []
    return True


def test_catalog_refresh_latency(benchmark):
    scenario = _scenario()

    def run() -> dict:
        out = {}
        tmp = tempfile.mkdtemp(prefix="bench_catalog_refresh.")
        try:
            static, static_stale, _epoch = _serve_phase(
                scenario, os.path.join(tmp, "static"), mutate=False
            )
            mutating, mutating_stale, epochs = _serve_phase(
                scenario, os.path.join(tmp, "mutating"), mutate=True
            )
            out["static_p50"] = statistics.median(static)
            out["mutating_p50"] = statistics.median(mutating)
            out["static_stale"] = static_stale
            out["mutating_stale"] = mutating_stale
            out["epochs"] = epochs
            problems = Catalog.load(
                os.path.join(tmp, "mutating")
            ).verify()["problems"]
            assert problems == [], f"store dirty after mutating run: {problems}"
            out["killed_checked"] = _killed_refresh_phase(tmp)
        finally:
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = r["mutating_p50"] / max(r["static_p50"], 1e-9)
    lines = [
        f"{len(scenario.corpus)} repository tables, {N_REQUESTS} requests, "
        f"mutation every {MUTATE_EVERY} requests, scale {SCALE}, "
        f"{os.cpu_count()} CPUs",
        f"static corpus   p50 discover(): {r['static_p50'] * 1000:9.1f}ms",
        f"mutating corpus p50 discover(): {r['mutating_p50'] * 1000:9.1f}ms "
        f"({ratio:.2f}x; target <=1.2x)",
        f"snapshot epochs observed while mutating: {r['epochs']}",
        f"max served staleness: static {r['static_stale']:.2f}s, "
        f"mutating {r['mutating_stale']:.2f}s (budget {STALENESS_BUDGET}s; "
        "asserted per request)",
        "store verifies clean after the mutating run",
        "killed refresh subprocess leaves a verifying store: "
        + ("checked" if r["killed_checked"] else "skipped (no fork)"),
        f"strict <=1.2x threshold (needs >=4 CPUs at full scale): "
        f"{'on' if STRICT else 'off'}",
    ]
    report("catalog_refresh", lines)
    assert r["epochs"] > 1, "mutating phase never produced a new snapshot"
    if STRICT:
        assert ratio <= 1.2, (
            f"p50 discover() over the mutating corpus is {ratio:.2f}x the "
            "static baseline (target: <=1.2x with the refresher running)"
        )
