"""Figure 11: (a) sensitivity to the cluster radius ε; (b) METAM variants.

(a) sweeps ε — the paper reports that the number of queries does not
change drastically with ε.  (b) compares full METAM against Eq (no
Thompson sampling), Nc (no clustering), and NcEq: the full algorithm
should dominate, since Eq/NcEq lose prioritization and Nc wastes queries
on redundant candidates.
"""

from benchmarks.common import report, scaled
from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.data import housing_scenario

QUERY_POINTS = (10, 25, 50, 100, 150)


def test_fig11a_vary_epsilon(benchmark):
    scenario = housing_scenario(
        seed=0, n_irrelevant=scaled(25), n_erroneous=scaled(15), n_traps=scaled(8)
    )
    engine = DiscoveryEngine(corpus=scenario.corpus)
    candidates = engine.prepare(scenario.base, seed=0)
    epsilons = (0.03, 0.05, 0.07, 0.15)

    def run_sweep():
        results = {}
        for epsilon in epsilons:
            config = MetamConfig(
                theta=1.0, query_budget=150, epsilon=epsilon, seed=0
            )
            results[f"eps={epsilon}"] = engine.discover(
                DiscoveryRequest(
                    base=scenario.base,
                    task=scenario.task,
                    searcher="metam",
                    config=config,
                    candidates=candidates,
                )
            ).result
        return results

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["setting     " + "".join(f"{q:>8}" for q in QUERY_POINTS)]
    for name, result in results.items():
        lines.append(
            f"{name:12s}"
            + "".join(f"{result.utility_at(q):8.3f}" for q in QUERY_POINTS)
        )
    report("fig11a_vary_epsilon", lines)
    finals = [r.utility_at(150) for r in results.values()]
    assert max(finals) - min(finals) <= 0.12  # robust to ε


def test_fig11b_variants(benchmark):
    scenario = housing_scenario(
        seed=0, n_irrelevant=scaled(25), n_erroneous=scaled(15), n_traps=scaled(8)
    )
    engine = DiscoveryEngine(corpus=scenario.corpus)
    candidates = engine.prepare(scenario.base, seed=0)
    base_config = MetamConfig(theta=1.0, query_budget=150, epsilon=0.1, seed=0)

    def run_sweep():
        # The ablation variants are first-class registry entries, so the
        # sweep is just four requests against the shared candidate set.
        results = {}
        for name in ("metam", "eq", "nc", "nceq"):
            results[name] = engine.discover(
                DiscoveryRequest(
                    base=scenario.base,
                    task=scenario.task,
                    searcher=name,
                    config=base_config,
                    candidates=candidates,
                )
            ).result
        return results

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["variant     " + "".join(f"{q:>8}" for q in QUERY_POINTS)]
    for name, result in results.items():
        lines.append(
            f"{name:12s}"
            + "".join(f"{result.utility_at(q):8.3f}" for q in QUERY_POINTS)
        )
    report("fig11b_variants", lines)
    best = max(r.utility_at(150) for r in results.values())
    assert results["metam"].utility_at(150) >= best - 0.05
