"""Table II: utility within a fixed query budget on six datasets.

Schools/Taxi/Crime/Housing run causal (how-to) analysis — the paper's (C)
annotation — and Pharmacy/Grocery run data analytics (classification).
The paper's budget is 1000 queries; ours scales with the smaller candidate
sets (budget 120).  Expected shape: METAM achieves the highest utility on
every row.
"""

from benchmarks.common import report, run_comparison, scaled
from repro.data import themed_scenario

THEMES = ["schools", "taxi", "crime", "housing", "pharmacy", "grocery"]
BUDGET = 120


def test_table2_datasets(benchmark):
    def run_all():
        rows = {}
        for theme in THEMES:
            scenario = themed_scenario(
                theme,
                seed=0,
                n_irrelevant=scaled(25),
                n_erroneous=scaled(12),
                n_traps=scaled(8),
            )
            rows[theme] = run_comparison(scenario, budget=BUDGET)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    searchers = ["metam", "mw", "overlap", "uniform"]
    lines = [
        f"{'Dataset':14s}" + "".join(f"{s:>9}" for s in searchers),
    ]
    wins = 0
    for theme, results in rows.items():
        kind = "(C)" if results["metam"].searcher and theme in (
            "schools", "taxi", "crime", "housing"
        ) else "   "
        values = {s: results[s].utility_at(BUDGET) for s in searchers}
        lines.append(
            f"{theme + ' ' + kind:14s}"
            + "".join(f"{values[s]:9.2f}" for s in searchers)
        )
        if values["metam"] >= max(values.values()) - 1e-9:
            wins += 1
    lines.append("")
    lines.append(f"METAM best-or-tied on {wins}/{len(rows)} datasets "
                 f"(paper: best on 6/6 within 1000 queries)")
    report("table2_datasets", lines)
    assert wins >= len(rows) - 1  # allow one noise-level tie-break loss
