"""Synthetic candidate sets with a cheap utility oracle.

The scalability experiments (Fig. 6, 8) need thousands of candidates and
thousands of queries; running a real model-training task would measure
the task, not the searcher.  ``PlantedSetTask`` gives an O(#columns)
oracle over the real code path (tables, query engine, profiles), so the
measured time is the discovery machinery itself.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.table import Table
from repro.discovery.candidates import Candidate
from repro.tasks.base import Task
from repro.utils.rng import ensure_rng


class ColumnAug:
    """Minimal augmentation: appends a small constant column."""

    def __init__(self, aug_id: str):
        self.aug_id = aug_id

    def apply(self, table: Table, base: Table, corpus: dict) -> Table:
        if self.aug_id in table:
            return table
        return table.with_column(self.aug_id, [1.0] * table.num_rows)


class PlantedSetTask(Task):
    """Utility = fraction of planted augmentations present in the table."""

    name = "planted_set"

    def __init__(self, planted):
        if not planted:
            raise ValueError("planted set must be non-empty")
        self.planted = set(planted)

    def utility(self, table: Table) -> float:
        present = sum(1 for c in table.column_names if c in self.planted)
        return self._clip(present / len(self.planted))


def make_synthetic_search(
    n_candidates: int,
    n_profiles: int = 5,
    n_planted: int = 3,
    seed: int = 0,
):
    """Build (candidates, base, corpus, task) for searcher benchmarks.

    Planted candidates get a mild boost on profile 0, so profile-driven
    searchers have signal to exploit — enough structure to be realistic,
    cheap enough to time thousands of queries.
    """
    rng = ensure_rng(seed)
    base = Table("synthetic_base", {"x": [1.0, 2.0, 3.0, 4.0]})
    planted_ids = [f"aug_{i:05d}" for i in range(n_planted)]
    candidates = []
    for i in range(n_candidates):
        aug_id = f"aug_{i:05d}"
        vector = rng.uniform(0.0, 0.7, size=n_profiles)
        if aug_id in planted_ids:
            vector[0] = float(rng.uniform(0.8, 1.0))
        candidates.append(
            Candidate(
                aug=ColumnAug(aug_id),
                values=[1.0] * 4,
                overlap=float(rng.uniform(0.4, 1.0)),
                profile_vector=np.clip(vector, 0.0, 1.0),
            )
        )
    # The "ghost" keeps the maximum reachable utility below 1.0, so
    # anytime searches burn their full budget — what the timing needs.
    task = PlantedSetTask(planted_ids + ["aug_ghost"])
    return candidates, base, {}, task
