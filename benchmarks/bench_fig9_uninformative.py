"""Figure 9: METAM with 0/2/4/8 added uninformative profiles.

The paper's claim: random profiles do not change solution quality — METAM
learns to ignore them at the cost of a few extra queries.
"""

from benchmarks.common import report, scaled
from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.data import housing_scenario
from repro.profiles import default_registry

QUERY_POINTS = (10, 25, 50, 100, 150)
UI_COUNTS = (0, 2, 4, 8)


def test_fig9_uninformative_profiles(benchmark):
    scenario = housing_scenario(
        seed=0, n_irrelevant=scaled(25), n_erroneous=scaled(15), n_traps=scaled(8)
    )

    engine = DiscoveryEngine(corpus=scenario.corpus)

    def run_sweep():
        results = {}
        for ui in UI_COUNTS:
            registry = default_registry().with_random_profiles(ui, seed=7)
            config = MetamConfig(theta=1.0, query_budget=150, epsilon=0.1, seed=0)
            results[f"UI:{ui}"] = engine.discover(
                DiscoveryRequest(
                    base=scenario.base,
                    task=scenario.task,
                    searcher="metam",
                    seed=0,
                    config=config,
                    registry=registry,
                )
            ).result
        return results

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["setting     " + "".join(f"{q:>8}" for q in QUERY_POINTS)]
    for name, result in results.items():
        lines.append(
            f"{name:12s}"
            + "".join(f"{result.utility_at(q):8.3f}" for q in QUERY_POINTS)
        )
    report("fig9_uninformative_profiles", lines)
    finals = [r.utility_at(150) for r in results.values()]
    assert max(finals) - min(finals) <= 0.12  # quality unaffected (±noise)
