"""§VI-A.4 generalization tasks: entity linking, fair ML, clustering.

Paper numbers: entity linking — METAM 4 queries, MW 10, others 40+;
fair classification — METAM <10 queries, profile-ranking baselines >50;
clustering — all techniques ≈4 queries (tiny candidate set).
"""

from benchmarks.common import report, run_comparison, scaled
from repro.data import clustering_scenario, entity_linking_scenario, fairness_scenario


def _queries_to(result, target: float) -> int:
    for step, value in result.trace:
        if value >= target:
            return step
    return result.queries


def test_generalization_entity_linking(benchmark):
    scenario = entity_linking_scenario(seed=0, n_irrelevant=scaled(40))
    results = benchmark.pedantic(
        lambda: run_comparison(scenario, budget=120, theta=0.99),
        rounds=1,
        iterations=1,
    )
    lines = [f"{'searcher':12s} {'final':>7} {'queries@0.95':>13}"]
    for name, result in results.items():
        lines.append(
            f"{name:12s} {result.utility:7.3f} {_queries_to(result, 0.95):13d}"
        )
    report("generalization_entity_linking", lines)
    assert results["metam"].utility >= 0.95
    assert _queries_to(results["metam"], 0.95) <= _queries_to(
        results["uniform"], 0.95
    ) + 10


def test_generalization_fair_classification(benchmark):
    scenario = fairness_scenario(seed=0, n_irrelevant=scaled(25))
    results = benchmark.pedantic(
        lambda: run_comparison(scenario, budget=80),
        rounds=1,
        iterations=1,
    )
    lines = [f"{'searcher':12s} {'base':>7} {'final':>7} {'queries':>9}"]
    for name, result in results.items():
        lines.append(
            f"{name:12s} {result.base_utility:7.3f} {result.utility:7.3f} "
            f"{result.queries:9d}"
        )
    report("generalization_fairness", lines)
    assert results["metam"].utility > results["metam"].base_utility


def test_generalization_clustering(benchmark):
    scenario = clustering_scenario(seed=0)  # exactly 8 candidates, as in §VI-A.4
    results = benchmark.pedantic(
        lambda: run_comparison(scenario, budget=40, theta=0.6),
        rounds=1,
        iterations=1,
    )
    lines = [f"{'searcher':12s} {'final':>7} {'queries':>9}"]
    for name, result in results.items():
        lines.append(f"{name:12s} {result.utility:7.3f} {result.queries:9d}")
    lines.append("")
    lines.append("Paper: all techniques need ≈4 queries on this tiny candidate set.")
    report("generalization_clustering", lines)
    assert results["metam"].utility >= 0.6
