"""Figure 7: adding informative task-specific profiles (ARDA [37]).

The ARDA random-injection importance score joins the default registry as
an extra profile.  The paper's claim: with the specialized profile METAM
reaches the same utility in fewer queries than without it, and still
beats MW and the static baselines.
"""

from benchmarks.common import report, scaled, series_table
from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.data import collisions_scenario, housing_scenario
from repro.profiles import ArdaImportanceProfile, ArdaScorer, default_registry

QUERY_POINTS = (10, 25, 50, 100, 150)


def _run_panel(scenario, target, mode):
    engine = DiscoveryEngine(corpus=scenario.corpus)
    plain = engine.prepare(scenario.base, seed=0)
    scorer = ArdaScorer(scenario.base, target, mode=mode, seed=0)
    scores = scorer.score_columns({c.aug_id: c.values for c in plain})
    arda_registry = default_registry().add(ArdaImportanceProfile(scores))
    enriched = engine.prepare(scenario.base, registry=arda_registry, seed=0)
    config = MetamConfig(theta=1.0, query_budget=150, epsilon=0.1, seed=0)

    def discover(searcher, candidates, **overrides):
        return engine.discover(
            DiscoveryRequest(
                base=scenario.base,
                task=scenario.task,
                searcher=searcher,
                theta=1.0,
                query_budget=150,
                seed=0,
                candidates=candidates,
                **overrides,
            )
        ).result

    results = {
        "metam+arda": discover("metam", enriched, config=config),
        "metam": discover("metam", plain, config=config),
    }
    for name in ("mw", "overlap", "uniform"):
        results[name] = discover(name, plain)
    return results


def test_fig7a_classification_with_arda_profile(benchmark):
    scenario = housing_scenario(
        seed=0, n_irrelevant=scaled(30), n_erroneous=scaled(20), n_traps=scaled(10)
    )
    results = benchmark.pedantic(
        lambda: _run_panel(scenario, "price_label", "classification"),
        rounds=1,
        iterations=1,
    )
    report("fig7a_classification_arda", series_table(results, QUERY_POINTS))
    # The paper's claim: the informative task-specific profile lets METAM
    # reach high utility in fewer queries than without it.
    assert (
        results["metam+arda"].utility_at(10)
        >= results["metam"].utility_at(10) - 0.02
    )
    assert (
        results["metam+arda"].utility_at(150)
        >= results["metam"].utility_at(150) - 0.07
    )


def test_fig7b_regression_with_arda_profile(benchmark):
    scenario = collisions_scenario(
        seed=0, n_irrelevant=scaled(30), n_erroneous=scaled(20), n_traps=scaled(10)
    )
    results = benchmark.pedantic(
        lambda: _run_panel(scenario, "collisions", "regression"),
        rounds=1,
        iterations=1,
    )
    report("fig7b_regression_arda", series_table(results, QUERY_POINTS))
    assert (
        results["metam+arda"].utility_at(10)
        >= results["metam"].utility_at(10) - 0.02
    )
    assert (
        results["metam+arda"].utility_at(150)
        >= results["metam"].utility_at(150) - 0.07
    )
