"""Telemetry overhead: instrumented defaults vs metrics/tracing off.

The observability layer (PR 6) rides the serving path of every
``discover()``: counters and histograms on each run, a contextvars span
tree per request, and gauge refreshes on ``stats()``.  Its contract is
that it is *passive* — it may observe the run but never change it, and
it must be effectively free next to the model fits a search performs.
This benchmark pins both halves of that contract on a warm ~200-table
engine:

**Correctness** — the same requests served by an instrumented engine
(the defaults) and a dark engine (``metrics=False, tracing=False``)
must produce byte-identical results (selected augmentations, utility,
query trace); only the run's ``trace`` attachment may differ.

**Cost** — warm ``discover()`` wall time with telemetry on must stay
within ``OVERHEAD_LIMIT`` (3%) of the dark engine, asserted where the
hardware gives stable timings (``STRICT``: >=4 CPUs at full scale) and
reported otherwise.  Runs alternate engine order to cancel drift and
the per-seed ratio is taken by median, so one GC pause cannot fail the
gate.

The instrumented engine's final exposition is written to
``benchmarks/results/obs_metrics_snapshot.prom`` / ``.json`` — the
artifact CI uploads from the bench-smoke job.
"""

import json
import os
import statistics
import time

from benchmarks.common import RESULTS_DIR, SCALE, report, scaled
from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.core.serialization import result_to_dict
from repro.data import housing_scenario

BUDGET = 30
#: Timed repetitions per engine (distinct search seeds, shared prepare).
REPS = 3
OVERHEAD_LIMIT = 0.03
#: The <3% gate only applies where timings are stable enough to judge.
STRICT = (os.cpu_count() or 1) >= 4 and SCALE >= 1.0


def _scenario():
    # ~200 repository tables at full scale: big enough that candidate
    # preparation and search exercise every instrumented subsystem.
    return housing_scenario(
        seed=0,
        n_irrelevant=scaled(120),
        n_erroneous=scaled(48),
        n_traps=scaled(24),
    )


def _request(scenario, seed):
    # prepare_seed pins profile sampling: every request shares the one
    # warm candidate set, so the timed section is pure serve+search.
    return DiscoveryRequest(
        base=scenario.base,
        task=scenario.task,
        searcher="metam",
        seed=seed,
        prepare_seed=0,
        config=MetamConfig(
            theta=1.0, query_budget=BUDGET, epsilon=0.1, seed=seed
        ),
    )


def _build(scenario, instrumented: bool) -> DiscoveryEngine:
    kwargs = {} if instrumented else {"metrics": False, "tracing": False}
    # Result cache off: an identical repeated request must *run*, not
    # replay, or the timed loop would measure cache lookups.
    engine = DiscoveryEngine(
        corpus=scenario.corpus, result_cache_bytes=0, **kwargs
    )
    engine.prepare(scenario.base, seed=0)
    return engine


def test_obs_overhead(benchmark):
    scenario = _scenario()

    def run() -> dict:
        on = _build(scenario, instrumented=True)
        off = _build(scenario, instrumented=False)

        # --- correctness: telemetry must not perturb the search.
        for seed in range(2):
            lit = on.discover(_request(scenario, seed))
            dark = off.discover(_request(scenario, seed))
            assert lit.completed and dark.completed
            assert result_to_dict(lit.result) == result_to_dict(dark.result), (
                f"telemetry changed the result for seed {seed}"
            )
            assert lit.trace is not None, "instrumented run lost its trace"
            assert dark.trace is None, "dark engine recorded a trace"

        # --- cost: same seeds on both engines, alternating order.
        t_on, t_off = [], []
        for rep in range(REPS):
            request_seed = 100 + rep
            order = ((off, t_off), (on, t_on))
            if rep % 2:
                order = ((on, t_on), (off, t_off))
            for engine, times in order:
                start = time.perf_counter()
                handle = engine.discover(_request(scenario, request_seed))
                times.append(time.perf_counter() - start)
                assert handle.completed

        overhead = statistics.median(
            lit_t / dark_t - 1.0 for lit_t, dark_t in zip(t_on, t_off, strict=True)
        )

        # --- the CI artifact: the instrumented engine's exposition.
        os.makedirs(RESULTS_DIR, exist_ok=True)
        prom_path = os.path.join(RESULTS_DIR, "obs_metrics_snapshot.prom")
        with open(prom_path, "w", encoding="utf-8") as handle:
            handle.write(on.metrics_prometheus())
        json_path = os.path.join(RESULTS_DIR, "obs_metrics_snapshot.json")
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(on.metrics_snapshot(), handle, indent=2, sort_keys=True)

        return {
            "n_candidates": len(on.prepare(scenario.base, seed=0)),
            "t_on": t_on,
            "t_off": t_off,
            "overhead": overhead,
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{r['n_candidates']} candidates, budget {BUDGET}/run, "
        f"{REPS} timed reps/engine, scale {SCALE}",
        "telemetry on  (defaults):      "
        + " ".join(f"{t:7.3f}s" for t in r["t_on"]),
        "telemetry off (dark engine):   "
        + " ".join(f"{t:7.3f}s" for t in r["t_off"]),
        f"median per-seed overhead: {r['overhead'] * 100:+.2f}% "
        f"(limit {OVERHEAD_LIMIT * 100:.0f}%)",
        "results byte-identical with telemetry on and off",
        "metrics snapshot written to results/obs_metrics_snapshot.{prom,json}",
        f"strict <{OVERHEAD_LIMIT * 100:.0f}% gate (needs >=4 CPUs at "
        f"full scale): {'on' if STRICT else 'off'}",
    ]
    report("obs_overhead", lines)
    if STRICT:
        assert r["overhead"] < OVERHEAD_LIMIT, (
            f"telemetry overhead {r['overhead'] * 100:.2f}% exceeds the "
            f"{OVERHEAD_LIMIT * 100:.0f}% budget on warm discover()"
        )
