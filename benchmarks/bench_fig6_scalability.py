"""Figure 6: scalability with (a) #join paths and (b) #profiles.

The paper measures wall-clock time for a fixed number of queries as the
candidate set grows to 1M join paths and the profile count to 100.  We
time METAM and MW on the synthetic cheap-oracle harness (so the searcher,
not the task, dominates) at scaled-down sizes and verify the paper's two
claims: runtime grows roughly linearly in both knobs, and MW grows faster
than METAM in the candidate count due to its per-step ranking work.
"""

import time

from benchmarks.common import report, scaled
from benchmarks.synthetic import make_synthetic_search
from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.baselines import MultiplicativeWeightsSearcher, UniformSearcher


def _time_metam(n_candidates, n_profiles, budget, seed=0):
    candidates, base, corpus, task = make_synthetic_search(
        n_candidates, n_profiles=n_profiles, seed=seed
    )
    config = MetamConfig(
        theta=1.0,  # unreachable (see synthetic ghost) — burns the budget
        query_budget=budget,
        epsilon=0.1,
        run_minimality=False,
        seed=seed,
    )
    engine = DiscoveryEngine(corpus=corpus)
    request = DiscoveryRequest(
        base=base, task=task, searcher="metam", config=config,
        candidates=candidates,
    )
    start = time.perf_counter()
    engine.discover(request)
    return time.perf_counter() - start


def _time_baseline(cls, n_candidates, n_profiles, budget, seed=0):
    candidates, base, corpus, task = make_synthetic_search(
        n_candidates, n_profiles=n_profiles, seed=seed
    )
    searcher = cls(candidates, base, corpus, task, theta=1.0, query_budget=budget, seed=seed)
    start = time.perf_counter()
    searcher.run()
    return time.perf_counter() - start


def test_fig6a_vary_join_paths(benchmark):
    sizes = [scaled(400), scaled(800), scaled(1600)]
    budget = scaled(300)

    def run_sweep():
        rows = {}
        for n in sizes:
            rows[n] = {
                "metam": _time_metam(n, 5, budget),
                "mw": _time_baseline(MultiplicativeWeightsSearcher, n, 5, budget),
                "uniform": _time_baseline(UniformSearcher, n, 5, budget),
            }
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'#candidates':>12} {'metam(s)':>10} {'mw(s)':>10} {'uniform(s)':>11}"]
    for n, times in rows.items():
        lines.append(
            f"{n:12d} {times['metam']:10.3f} {times['mw']:10.3f} "
            f"{times['uniform']:11.3f}"
        )
    lines.append("")
    lines.append("Paper shape: all searchers scale linearly in the candidate count.")
    lines.append("(At paper scale MW's per-step O(n log n) sort overtakes METAM's")
    lines.append("amortized clustering; at this scale METAM's constants dominate.)")
    report("fig6a_vary_join_paths", lines)
    # Roughly linear growth: 4x candidates should cost well under 16x time.
    small, large = sizes[0], sizes[-1]
    assert rows[large]["metam"] < rows[small]["metam"] * 16


def test_fig6b_vary_profiles(benchmark):
    profile_counts = [10, 25, 50, 100]
    budget = scaled(200)
    n = scaled(400)

    def run_sweep():
        rows = {}
        for p in profile_counts:
            rows[p] = {
                "metam": _time_metam(n, p, budget),
                "mw": _time_baseline(MultiplicativeWeightsSearcher, n, p, budget),
                "uniform": _time_baseline(UniformSearcher, n, p, budget),
            }
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'#profiles':>10} {'metam(s)':>10} {'mw(s)':>10} {'uniform(s)':>11}"]
    for p, times in rows.items():
        lines.append(
            f"{p:10d} {times['metam']:10.3f} {times['mw']:10.3f} "
            f"{times['uniform']:11.3f}"
        )
    lines.append("")
    lines.append("Paper shape: METAM and MW scale linearly with #profiles;")
    lines.append("Uniform ignores profiles, so its time stays flat.")
    report("fig6b_vary_profiles", lines)
    spread = max(rows[p]["uniform"] for p in profile_counts) - min(
        rows[p]["uniform"] for p in profile_counts
    )
    assert spread < max(rows[100]["metam"], 0.5)  # uniform ~flat
