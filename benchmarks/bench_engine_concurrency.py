"""Engine concurrency: N discover() calls sharing one warm engine.

The serving story of the API redesign: one :class:`DiscoveryEngine`
holds the warm state (prepared candidates, discovery index) and serves
concurrent requests, each with its own searcher, RNG, and query
accounting.  This benchmark times a single sequential cold run
(prepare + search), then issues ``N_CONCURRENT`` requests against one
shared warm engine from worker threads and checks both correctness
(every concurrent result byte-identical to its sequential reference)
and throughput (total wall-clock below ``N_CONCURRENT`` x the single
sequential run, because preparation is paid once and shared).
"""

import time
from concurrent.futures import ThreadPoolExecutor

from benchmarks.common import report, scaled
from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.data import housing_scenario

N_CONCURRENT = 4
BUDGET = 30


def _request(scenario, seed):
    # prepare_seed pins profile sampling, so runs that differ only in
    # their search seed share one cached candidate set on a warm engine.
    return DiscoveryRequest(
        base=scenario.base,
        task=scenario.task,
        searcher="metam",
        seed=seed,
        prepare_seed=0,
        config=MetamConfig(
            theta=1.0, query_budget=BUDGET, epsilon=0.1, seed=seed
        ),
    )


def test_engine_concurrency(benchmark):
    # A distractor-heavy corpus with a modest query budget: preparation
    # (index + materialize + profile every candidate) is a substantial
    # share of a cold run, which is exactly the cost the shared warm
    # engine amortizes across concurrent requests.
    scenario = housing_scenario(
        seed=0,
        n_irrelevant=scaled(40),
        n_erroneous=scaled(24),
        n_traps=scaled(12),
    )

    def run() -> dict:
        # --- single sequential run, cold engine: prepare + search.
        cold_engine = DiscoveryEngine(corpus=scenario.corpus)
        start = time.perf_counter()
        single = cold_engine.discover(_request(scenario, seed=0))
        single_time = time.perf_counter() - start
        assert single.completed

        # --- sequential references for every concurrent seed (fresh
        # engine, so the comparison below is against undisturbed runs).
        reference_engine = DiscoveryEngine(corpus=scenario.corpus)
        references = {
            seed: reference_engine.discover(_request(scenario, seed)).result
            for seed in range(N_CONCURRENT)
        }

        # --- N concurrent requests against one shared warm engine.  The
        # candidate spec is identical across requests (only the search
        # seed differs), so the engine's first discover() prepared the
        # candidates and every concurrent run reuses them.
        shared = DiscoveryEngine(corpus=scenario.corpus)
        shared.prepare(scenario.base, seed=0)
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=N_CONCURRENT) as pool:
            futures = {
                seed: pool.submit(shared.discover, _request(scenario, seed))
                for seed in range(N_CONCURRENT)
            }
            runs = {seed: f.result() for seed, f in futures.items()}
        concurrent_time = time.perf_counter() - start

        for seed, run_handle in runs.items():
            assert run_handle.completed, f"seed {seed} did not complete"
            assert run_handle.result.selected == references[seed].selected
            assert run_handle.result.trace == references[seed].trace
        stats = shared.stats()
        assert stats["prepared_candidate_sets"] == 1  # shared, not re-done
        assert stats["runs_completed"] == N_CONCURRENT

        return {
            "n_candidates": single.n_candidates,
            "single": single_time,
            "concurrent": concurrent_time,
            "queries": sum(r.result.queries for r in runs.values()),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    budget_limit = N_CONCURRENT * r["single"]
    speedup = budget_limit / max(r["concurrent"], 1e-9)
    report(
        "engine_concurrency",
        [
            f"corpus: {r['n_candidates']} candidates, budget {BUDGET}/run",
            f"single sequential run (cold): {r['single']:8.3f}s",
            f"{N_CONCURRENT} concurrent runs (shared warm engine): "
            f"{r['concurrent']:8.3f}s ({r['queries']} queries total)",
            f"limit ({N_CONCURRENT} x single): {budget_limit:8.3f}s",
            f"effective speedup vs {N_CONCURRENT} cold sequential runs: "
            f"{speedup:.2f}x",
            "all concurrent results byte-identical to sequential references",
        ],
    )
    assert r["concurrent"] < budget_limit, (
        f"{N_CONCURRENT} concurrent runs took {r['concurrent']:.3f}s, "
        f"over the {budget_limit:.3f}s limit"
    )
