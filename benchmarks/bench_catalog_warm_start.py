"""Catalog warm start: cold vs warm index + profile construction.

The production story of the catalog subsystem: pay the indexing and
profiling cost once, persist it, and serve every later discovery run by
hydrating from disk.  This benchmark builds a 200-table corpus, runs the
discovery front-end cold (sign every column, compute every profile
vector), then re-runs it warm from a saved catalog (fingerprint check +
artifact load only) and reports the speedup of the index+profile phases.
The warm run must also be *exact*: identical candidate sets and
byte-identical profile vectors.
"""

import time

import numpy as np

from benchmarks.common import report, scaled
from repro.catalog import Catalog, CatalogStore
from repro.data import generate_corpus
from repro.data.generator import make_keys
from repro.dataframe.table import Table
from repro.discovery import (
    DiscoveryIndex,
    generate_candidates,
    materialize_candidates,
    profile_candidates,
)
from repro.profiles.registry import default_registry

SEED = 0


def _base_table(n_rows: int = 150, n_pools: int = 4) -> Table:
    """A query table keyed into several of the corpus's key pools, so the
    join fan-out (and hence the profiling load) is realistic."""
    rng = np.random.default_rng(SEED)
    columns = {
        f"key_{p}": make_keys(n_rows, prefix=f"k{p}_", start=0)
        for p in range(n_pools)
    }
    columns["signal"] = rng.normal(size=n_rows).tolist()
    columns["target"] = rng.uniform(size=n_rows).tolist()
    return Table("bench_base", columns)


def _profile(base, index, corpus, registry, cache=None):
    augmentations = generate_candidates(base, index, max_hops=1, max_fanout=500)
    candidates = materialize_candidates(base, augmentations, corpus)
    start = time.perf_counter()
    profile_candidates(candidates, base, corpus, registry, seed=SEED, cache=cache)
    return candidates, time.perf_counter() - start


def test_catalog_warm_start(benchmark, tmp_path):
    n_tables = scaled(200)
    corpus_list = generate_corpus(n_tables, style="open_data", seed=SEED)
    corpus = {t.name: t for t in corpus_list}
    base = _base_table()
    registry = default_registry()

    def run() -> dict:
        # --- cold: sign every column, compute every profile vector.
        start = time.perf_counter()
        cold_index = DiscoveryIndex(min_containment=0.3, seed=SEED).build(
            corpus_list
        )
        cold_index_time = time.perf_counter() - start
        cold_candidates, cold_profile_time = _profile(
            base, cold_index, corpus, registry
        )

        # --- persist the catalog (one-time cost, amortized across runs).
        catalog_dir = tmp_path / "catalog"
        catalog = Catalog(
            CatalogStore(str(catalog_dir)), min_containment=0.3, seed=SEED
        )
        catalog.refresh(corpus)
        catalog.save()
        seeded, _ = _profile(
            base,
            catalog.index,
            corpus,
            registry,
            cache=catalog.profile_cache(base, registry, seed=SEED),
        )
        assert [c.aug_id for c in seeded] == [c.aug_id for c in cold_candidates]

        # --- warm: fresh process simulation — hydrate index + profiles.
        # Two measured repetitions, best-of taken, so a transient load
        # spike (the warm phase is ~100ms) doesn't distort the ratio.
        warm_index_time = float("inf")
        warm_profile_time = float("inf")
        for _rep in range(2):
            start = time.perf_counter()
            warm_catalog = Catalog.load(str(catalog_dir), corpus=corpus)
            warm_index_time = min(warm_index_time, time.perf_counter() - start)
            warm_cache = warm_catalog.profile_cache(base, registry, seed=SEED)
            warm_candidates, rep_profile_time = _profile(
                base, warm_catalog.index, corpus, registry, cache=warm_cache
            )
            warm_profile_time = min(warm_profile_time, rep_profile_time)

        assert warm_catalog.computed_columns == 0, "warm start re-signed columns"
        assert warm_cache.misses == 0, "warm start recomputed profiles"
        assert [c.aug_id for c in warm_candidates] == [
            c.aug_id for c in cold_candidates
        ]
        for cold_c, warm_c in zip(cold_candidates, warm_candidates, strict=True):
            assert np.array_equal(cold_c.profile_vector, warm_c.profile_vector)

        return {
            "n_tables": n_tables,
            "n_candidates": len(cold_candidates),
            "cold_index": cold_index_time,
            "cold_profile": cold_profile_time,
            "warm_index": warm_index_time,
            "warm_profile": warm_profile_time,
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    cold = r["cold_index"] + r["cold_profile"]
    warm = r["warm_index"] + r["warm_profile"]
    speedup = cold / max(warm, 1e-9)
    report(
        "catalog_warm_start",
        [
            f"corpus: {r['n_tables']} tables, {r['n_candidates']} candidates",
            f"{'phase':18s} {'cold':>9} {'warm':>9}",
            f"{'index build':18s} {r['cold_index']:8.3f}s {r['warm_index']:8.3f}s",
            f"{'profile vectors':18s} {r['cold_profile']:8.3f}s {r['warm_profile']:8.3f}s",
            f"{'total':18s} {cold:8.3f}s {warm:8.3f}s",
            f"warm-start speedup: {speedup:.1f}x (target >= 5x)",
            "warm run verified exact: identical candidates and profile vectors",
        ],
    )
    assert speedup >= 5.0, f"warm start only {speedup:.1f}x faster"
