"""Parallel candidate preparation: striped locks + concurrency-safe store.

PR 3 serialized *all* candidate preparation behind one engine-wide lock
— correct, but 4 workers preparing 4 unrelated ``(base, spec, seed)``
keys ran strictly one at a time, and the last-writer-wins store made it
unsafe to spread preparation over processes instead.  This PR fixes
both, and this benchmark measures both:

**Threads** — ``N_WORKERS`` threads against one engine, once with
``striped_prepare=False`` (the engine-wide-lock baseline) and once with
the default striped per-key locks.  Candidate sets must be
byte-identical to sequential references either way.  The GIL bounds how
much pure-Python work threads can overlap, so this section reports its
ratio without asserting a floor.

**Processes** — the real throughput claim.  A catalog is built once,
then ``N_WORKERS`` forked workers each open an engine on a *copy-free
shared* catalog directory and prepare one disjoint key, flushing
profile groups into the same store concurrently (safe now: shard file
locks + append-then-rename manifests + merging profile writes).  The
single-lock baseline is the same work forced serial — exactly what the
engine-wide lock costs a serving process.  Aggregate throughput must be
≥2× the serial baseline where the hardware can deliver it (≥4 CPUs at
full scale, i.e. CI runners and real servers; a 1-core box physically
cannot overlap work, so there the ratio is reported, not asserted).
After the concurrent phase the store must verify clean.
"""

import hashlib
import multiprocessing
import os
import shutil
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from benchmarks.common import SCALE, report, scaled
from repro import Catalog, DiscoveryEngine, DiscoveryRequest
from repro.data import housing_scenario

N_WORKERS = 4
#: Disjoint prepare keys: one profile-sampling seed per worker.
SEEDS = tuple(range(N_WORKERS))
#: The ≥2× floor only applies where the hardware can overlap prepares.
STRICT = (os.cpu_count() or 1) >= 4 and SCALE >= 1.0

#: Inherited by forked workers (built before the fork; fork-only start
#: method keeps this benchmark off spawn's pickling path).
_SHARED = {}


def _scenario():
    return housing_scenario(
        seed=0,
        n_irrelevant=scaled(24),
        n_erroneous=scaled(16),
        n_traps=scaled(8),
    )


def _digest(candidates) -> str:
    """Content hash of a prepared candidate set (order-sensitive)."""
    h = hashlib.blake2b(digest_size=16)
    for candidate in candidates:
        h.update(candidate.aug_id.encode("utf-8"))
        h.update(repr(candidate.values).encode("utf-8"))
        h.update(np.ascontiguousarray(candidate.profile_vector).tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Threads: striped vs engine-wide lock
# ----------------------------------------------------------------------
def _thread_prepare(scenario, striped: bool):
    engine = DiscoveryEngine(corpus=scenario.corpus, striped_prepare=striped)
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=N_WORKERS) as pool:
        futures = {
            seed: pool.submit(engine.prepare, scenario.base, seed=seed)
            for seed in SEEDS
        }
        prepared = {seed: f.result() for seed, f in futures.items()}
    elapsed = time.perf_counter() - start
    assert engine.stats()["prepared_candidate_sets"] == N_WORKERS
    return {seed: _digest(c) for seed, c in prepared.items()}, elapsed


# ----------------------------------------------------------------------
# Run records: cache accounting must be explicit, not inferred
# ----------------------------------------------------------------------
def _assert_record_cache_accounting(scenario):
    """A cacheable request served twice on one warm engine must say so
    in its archived JSON record (the ``caches`` block PR 6 added), so
    benchmarks and dashboards assert cache behavior instead of
    guessing it from timings."""
    engine = DiscoveryEngine(corpus=scenario.corpus, result_cache_bytes=8 << 20)
    engine.tasks.register("bench-task", lambda **_options: scenario.task)
    request = DiscoveryRequest(
        base=scenario.base,
        task="bench-task",
        searcher="uniform",
        theta=0.9,
        query_budget=15,
        seed=0,
    )
    first = engine.discover(request).to_record()["caches"]
    assert first == {
        "prepare_source": "prepared",
        "prepare_cache_hit": False,
        "result_cache_hit": False,
    }, f"cold run recorded wrong cache info: {first}"
    second = engine.discover(request).to_record()["caches"]
    assert second["result_cache_hit"], "warm replay not recorded as a hit"
    assert second["result_cache_tier"] == "memory"
    # A same-spec request under a different search seed re-searches but
    # reuses the prepared candidates — and its record must show that.
    third_request = DiscoveryRequest(
        base=scenario.base,
        task="bench-task",
        searcher="uniform",
        theta=0.9,
        query_budget=15,
        seed=1,
        prepare_seed=0,
    )
    third = engine.discover(third_request).to_record()["caches"]
    assert third["prepare_cache_hit"] and third["prepare_source"] == "cache"
    assert not third["result_cache_hit"]


# ----------------------------------------------------------------------
# Processes: shared warm catalog, one worker per disjoint key
# ----------------------------------------------------------------------
def _process_worker(seed, barrier, queue):
    scenario = _SHARED["scenario"]
    engine = DiscoveryEngine.open(
        _SHARED["catalog_dir"], corpus=scenario.corpus
    )
    barrier.wait()
    start = time.perf_counter()
    candidates = engine.prepare(scenario.base, seed=seed)
    end = time.perf_counter()
    queue.put((seed, start, end, _digest(candidates)))


def _parallel_processes(scenario, catalog_dir):
    """Fan the disjoint keys over forked workers sharing one store."""
    ctx = multiprocessing.get_context("fork")
    _SHARED["scenario"] = scenario
    _SHARED["catalog_dir"] = catalog_dir
    barrier = ctx.Barrier(N_WORKERS)
    queue = ctx.Queue()
    workers = [
        ctx.Process(target=_process_worker, args=(seed, barrier, queue))
        for seed in SEEDS
    ]
    for worker in workers:
        worker.start()
    results = [queue.get() for _ in SEEDS]
    for worker in workers:
        worker.join()
        assert worker.exitcode == 0, f"worker died with {worker.exitcode}"
    wall = max(end for _s, _b, end, _d in results) - min(
        start for _s, start, _e, _d in results
    )
    return {seed: digest for seed, _s, _e, digest in results}, wall


def test_engine_parallel_prepare(benchmark):
    scenario = _scenario()
    fork_available = "fork" in multiprocessing.get_all_start_methods()

    def run() -> dict:
        # --- sequential references (undisturbed engines, one per key).
        reference = {}
        for seed in SEEDS:
            engine = DiscoveryEngine(corpus=scenario.corpus)
            reference[seed] = _digest(engine.prepare(scenario.base, seed=seed))

        # --- threads: engine-wide lock vs striped per-key locks.
        locked_digests, locked_time = _thread_prepare(scenario, striped=False)
        striped_digests, striped_time = _thread_prepare(scenario, striped=True)
        assert locked_digests == reference, "engine-wide lock diverged"
        assert striped_digests == reference, "striped prepare diverged"

        # --- archived run records expose cache behavior explicitly.
        _assert_record_cache_accounting(scenario)

        out = {
            "n_candidates": None,
            "thread_locked": locked_time,
            "thread_striped": striped_time,
        }
        if not fork_available:  # pragma: no cover - non-POSIX only
            return out

        # --- processes over one shared warm catalog.
        tmp = tempfile.mkdtemp(prefix="bench_parallel_catalog.")
        try:
            catalog_dir = os.path.join(tmp, "catalog")
            catalog = Catalog.open(catalog_dir, corpus=scenario.corpus)
            catalog.save()

            # Serial baseline: the same warm-start work an engine-wide
            # lock would force one-at-a-time, on a private copy so the
            # parallel phase starts from an identical store.  Its
            # digests are the sequential reference for the parallel
            # phase (the catalog's index seed governs discovery in
            # warm-start mode, so warm results are compared to warm —
            # the engine warns about exactly this).
            serial_dir = os.path.join(tmp, "catalog_serial")
            shutil.copytree(catalog_dir, serial_dir)
            serial_time = 0.0
            serial_digests = {}
            engine = DiscoveryEngine.open(serial_dir, corpus=scenario.corpus)
            for seed in SEEDS:
                start = time.perf_counter()
                candidates = engine.prepare(scenario.base, seed=seed)
                serial_time += time.perf_counter() - start
                serial_digests[seed] = _digest(candidates)

            process_digests, process_wall = _parallel_processes(
                scenario, catalog_dir
            )
            assert process_digests == serial_digests, (
                "process workers diverged from the sequential warm runs"
            )
            problems = Catalog.load(catalog_dir).verify()["problems"]
            assert not problems, f"store dirty after concurrent writers: {problems}"
            out["serial"] = serial_time
            out["process"] = process_wall
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{N_WORKERS} workers, {N_WORKERS} disjoint (base, spec, seed) "
        f"keys, {os.cpu_count()} CPUs, scale {SCALE}",
        f"threads, engine-wide lock: {r['thread_locked']:8.3f}s",
        f"threads, striped locks:    {r['thread_striped']:8.3f}s "
        f"({r['thread_locked'] / max(r['thread_striped'], 1e-9):.2f}x; "
        "GIL-bound)",
    ]
    speedup = None
    if "process" in r:
        speedup = r["serial"] / max(r["process"], 1e-9)
        lines += [
            f"processes, serial baseline (single-lock cost): "
            f"{r['serial']:8.3f}s",
            f"processes, {N_WORKERS} concurrent over shared catalog: "
            f"{r['process']:8.3f}s",
            f"aggregate prepare throughput: {speedup:.2f}x the "
            "single-lock baseline",
            "store verifies clean after concurrent writers",
        ]
    lines += [
        "all candidate sets byte-identical to sequential references",
        "run records carry explicit prepare/result cache accounting",
        f"strict >=2x threshold (needs >=4 CPUs at full scale): "
        f"{'on' if STRICT else 'off'}",
    ]
    report("engine_parallel_prepare", lines)
    if STRICT and speedup is not None:
        assert speedup >= 2.0, (
            f"parallel prepare throughput only {speedup:.2f}x the "
            "single-lock baseline (target: >=2x for disjoint keys "
            f"with {N_WORKERS} workers)"
        )
