"""Figure 10: removing profiles (I = informative, UI = uninformative).

Starting from 5 informative + 5 uninformative profiles: removing the
uninformative ones improves the utility-vs-queries tradeoff; removing
informative ones (I:3 UI:0) degrades it.
"""

from benchmarks.common import report, scaled
from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.data import housing_scenario
from repro.profiles import default_registry

QUERY_POINTS = (10, 25, 50, 100, 150)


def _registry(n_informative: int, n_uninformative: int):
    informative = default_registry()
    keep = informative.names[:n_informative]
    return informative.subset(keep).with_random_profiles(n_uninformative, seed=3)


def test_fig10_remove_profiles(benchmark):
    scenario = housing_scenario(
        seed=0, n_irrelevant=scaled(25), n_erroneous=scaled(15), n_traps=scaled(8)
    )
    settings = {
        "I:5 UI:5": (5, 5),
        "I:5 UI:2": (5, 2),
        "I:5 UI:0": (5, 0),
        "I:3 UI:0": (3, 0),
    }

    engine = DiscoveryEngine(corpus=scenario.corpus)

    def run_sweep():
        results = {}
        for name, (informative, uninformative) in settings.items():
            registry = _registry(informative, uninformative)
            config = MetamConfig(theta=1.0, query_budget=150, epsilon=0.1, seed=0)
            results[name] = engine.discover(
                DiscoveryRequest(
                    base=scenario.base,
                    task=scenario.task,
                    searcher="metam",
                    seed=0,
                    config=config,
                    registry=registry,
                )
            ).result
        return results

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["setting     " + "".join(f"{q:>8}" for q in QUERY_POINTS)]
    for name, result in results.items():
        lines.append(
            f"{name:12s}"
            + "".join(f"{result.utility_at(q):8.3f}" for q in QUERY_POINTS)
        )
    report("fig10_remove_profiles", lines)
    # All configurations still find useful augmentations.
    for result in results.values():
        assert result.utility > result.base_utility
