"""Figure 4: (a) classification with AutoML; (b) unions (row addition).

Panel (a) swaps the random-forest task for the MiniAutoML searcher (TPOT
substitute): METAM improves the learned pipeline's utility while the
baselines lag.  Panel (b) augments rows instead of columns: good unions
(in-distribution batches) help, mislabeled scraped batches hurt, and the
searchers must tell them apart interventionally.
"""

from benchmarks.common import report, run_comparison, scaled, series_table
from repro import CandidateSpec, DiscoveryEngine
from repro.data import schools_scenario, unions_scenario
from repro.tasks import AutoMLTask

QUERY_POINTS = (5, 10, 20, 40, 60)


def test_fig4a_automl(benchmark):
    scenario = schools_scenario(
        seed=0,
        n_irrelevant=scaled(20),
        n_erroneous=scaled(12),
        n_traps=scaled(8),
    )
    # Same discovery problem, AutoML utility oracle (Fig. 4a).
    scenario.task = AutoMLTask(
        "outcome", exclude_columns=("school_id",), budget=4, seed=0
    )
    results = benchmark.pedantic(
        lambda: run_comparison(scenario, budget=60),
        rounds=1,
        iterations=1,
    )
    report("fig4a_automl", series_table(results, QUERY_POINTS))
    best = max(r.utility_at(60) for r in results.values())
    assert results["metam"].utility_at(60) >= best - 0.05
    assert results["metam"].utility > results["metam"].base_utility


def test_fig4b_unions(benchmark):
    scenario = unions_scenario(
        seed=0, n_good_unions=scaled(8), n_bad_unions=scaled(8)
    )
    engine = DiscoveryEngine(corpus=scenario.corpus)
    candidates = engine.prepare(
        scenario.base,
        spec=CandidateSpec(include_unions=True, min_union_shared=0.9),
        seed=0,
    )
    union_candidates = [c for c in candidates if c.aug_id.startswith("union:")]
    results = benchmark.pedantic(
        lambda: run_comparison(
            scenario, budget=60, candidates=union_candidates
        ),
        rounds=1,
        iterations=1,
    )
    report("fig4b_unions", series_table(results, (5, 10, 20, 40, 60)))
    metam = results["metam"]
    assert metam.utility >= metam.base_utility
    best = max(r.utility_at(60) for r in results.values())
    assert metam.utility_at(60) >= best - 0.05
    # Mislabeled unions must not be in the solution.
    assert all(
        aug_id.replace("union:", "").startswith("rents_batch")
        for aug_id in metam.selected
    )
