"""Figure 8: queries to find the planted ground truth under distractors.

A single ground-truth augmentation is planted; (a) varies *irrelevant*
candidates (correct joins, no signal) and (b) varies *erroneous*
candidates (shuffled join keys).  The paper's shape: the ground truth is
found within a few hundred queries, and the query count grows with the
distractor count but stays far below exhaustive search.
"""

from benchmarks.common import report, scaled
from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.data.generator import RepositoryBuilder, make_keys
from repro.dataframe.table import Table
from repro.tasks.causal.howto import HowToTask
from repro.utils.rng import ensure_rng


def _single_truth_scenario(n_irrelevant: int, n_erroneous: int, seed: int = 0):
    """One planted cause of the outcome + configurable distractors."""
    rng = ensure_rng(seed)
    n_keys = 200
    keys = make_keys(n_keys, prefix="rec", start=1)
    cause = rng.normal(size=n_keys)
    outcome = 1.5 * cause + rng.normal(scale=0.4, size=n_keys)
    noise_feature = rng.normal(size=n_keys)
    base = Table(
        "fig8_base",
        {
            "record_id": keys,
            "outcome": outcome.tolist(),
            "noise_feature": noise_feature.tolist(),
        },
    )
    builder = RepositoryBuilder(keys, key_column="record_id", seed=seed)
    builder.add_relevant("truth_table", "true_cause", cause.tolist())
    # Half of the "irrelevant" pool are profile look-alikes (traps), so
    # the quality prior cannot trivially single out the planted truth —
    # queries must grow with the distractor count, as in the paper.
    builder.add_traps(n_irrelevant // 2, noise_feature.tolist())
    builder.add_irrelevant(n_irrelevant - n_irrelevant // 2)
    builder.add_erroneous(n_erroneous, signal_values=cause.tolist())
    task = HowToTask(
        "outcome", truth_causes={"true_cause"}, exclude_columns=("record_id",)
    )
    return base, builder.build(), task


def _queries_to_truth(n_irrelevant: int, n_erroneous: int, seed: int = 0) -> int:
    base, corpus, task = _single_truth_scenario(n_irrelevant, n_erroneous, seed)
    engine = DiscoveryEngine(corpus=corpus)
    config = MetamConfig(theta=1.0, query_budget=2000, epsilon=0.1, seed=seed)
    result = engine.discover(
        DiscoveryRequest(
            base=base, task=task, searcher="metam", seed=seed, config=config
        )
    ).result
    assert result.utility == 1.0, "ground truth not found within budget"
    # Queries spent until the trace first reaches utility 1.0.
    for step, value in result.trace:
        if value >= 1.0:
            return step
    return result.queries


def test_fig8a_vary_irrelevant(benchmark):
    counts = [0, scaled(50), scaled(100), scaled(200)]
    rows = benchmark.pedantic(
        lambda: {n: _queries_to_truth(n, n_erroneous=20) for n in counts},
        rounds=1,
        iterations=1,
    )
    lines = [f"{'#irrelevant':>12} {'#queries':>10}"]
    for n, queries in rows.items():
        lines.append(f"{n:12d} {queries:10d}")
    report("fig8a_vary_irrelevant", lines)
    assert rows[counts[-1]] <= 2000
    assert rows[counts[0]] <= rows[counts[-1]] + 5  # grows (modulo noise)


def test_fig8b_vary_erroneous(benchmark):
    counts = [0, scaled(50), scaled(100), scaled(200)]
    rows = benchmark.pedantic(
        lambda: {n: _queries_to_truth(20, n_erroneous=n) for n in counts},
        rounds=1,
        iterations=1,
    )
    lines = [f"{'#erroneous':>12} {'#queries':>10}"]
    for n, queries in rows.items():
        lines.append(f"{n:12d} {queries:10d}")
    report("fig8b_vary_erroneous", lines)
    assert rows[counts[-1]] <= 2000
