"""Figure 5: averaged semi-synthetic evaluation.

The paper synthesizes a target column from five random repository
augmentations and averages 100 instantiations over four panels:
(a) classification, (b) causality, (c) what-if, (d) how-to.  We average a
scaled-down number of instantiations (REPRO_SCALE × 3) with the same
protocol and check that METAM matches or beats every baseline on average.
"""

import pytest

from benchmarks.common import (
    average_results,
    averaged_table,
    report,
    run_comparison,
    scaled,
)
from repro.data import semisynthetic_scenario

QUERY_POINTS = (10, 25, 50, 100)
N_INSTANTIATIONS = scaled(3)


def _panel(task_type: str, budget: int = 100):
    per_seed = []
    for seed in range(N_INSTANTIATIONS):
        scenario = semisynthetic_scenario(
            task_type,
            seed=seed,
            n_tables=scaled(25),
            n_erroneous=scaled(8),
            n_traps=scaled(5),
        )
        per_seed.append(run_comparison(scenario, budget=budget, seed=seed))
    return average_results(per_seed, QUERY_POINTS)


@pytest.mark.parametrize(
    "task_type", ["classification", "causality", "what_if", "how_to"]
)
def test_fig5_semisynthetic(benchmark, task_type):
    averages = benchmark.pedantic(
        lambda: _panel(task_type), rounds=1, iterations=1
    )
    report(f"fig5_{task_type}", averaged_table(averages, QUERY_POINTS))
    final = {name: values[-1] for name, values in averages.items()}
    best_baseline = max(v for k, v in final.items() if k != "metam")
    assert final["metam"] >= best_baseline - 0.07
