"""Discovery-as-a-service under multi-tenant load.

Claims, each asserted:

- **fidelity**: every run served over HTTP returns a result
  byte-identical (canonical wire JSON) to the same request answered by
  an in-process ``engine.discover()`` on a fresh engine;
- **responsiveness under load**: with two tenants submitting
  concurrently against a warm ~200-table catalog, the p99 latency of
  the status endpoint stays under :data:`P99_BUDGET_SECONDS` — polling
  must not queue behind search work;
- **quota isolation**: a tenant that exceeds its admission quota gets
  HTTP 429 + ``Retry-After`` immediately (never queue starvation), and
  the well-behaved tenant's runs all complete regardless.
"""

import http.client
import json
import threading
import time

from benchmarks.common import report, scaled
from repro.api import DiscoveryEngine
from repro.api.wire import request_from_wire, run_to_wire
from repro.data import generate_corpus
from repro.server import DiscoveryService, ServiceConfig, serve

N_TABLES = scaled(200)
RUNS_PER_TENANT = scaled(4)
EXTRA_NOISY_SUBMITS = scaled(6)
QUERY_BUDGET = scaled(15)
TENANTS = ("acme", "globex")
#: p99 ceiling for GET /v1/runs/{id} while the engine is busy.
P99_BUDGET_SECONDS = 0.5


def _payload(base_name, score_column, seed):
    return {
        "base": base_name,
        "task": "clustering",
        "task_options": {"score_column": score_column},
        "searcher": "uniform",
        "theta": 0.95,
        "query_budget": QUERY_BUDGET,
        "seed": seed,
        "prepare_seed": 0,  # every run shares one prepared candidate set
    }


def _call(host, port, method, path, body=None):
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        start = time.perf_counter()
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        elapsed = time.perf_counter() - start
        data = (
            json.loads(raw)
            if response.headers.get("Content-Type", "").startswith(
                "application/json"
            )
            else raw
        )
        return response.status, data, dict(response.headers), elapsed
    finally:
        conn.close()


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def test_server_load(benchmark):
    corpus = generate_corpus(N_TABLES, seed=0)
    lookup = {table.name: table for table in corpus}
    base = corpus[0]
    score_column = base.column_names[1]

    def run() -> dict:
        # --- in-process references: one fresh engine, same requests.
        reference_engine = DiscoveryEngine(corpus=corpus, max_workers=2)
        references = {}
        for tenant_index, tenant in enumerate(TENANTS):
            for i in range(RUNS_PER_TENANT):
                seed = tenant_index * 100 + i
                request = request_from_wire(
                    _payload(base.name, score_column, seed), lookup
                )
                references[(tenant, i)] = run_to_wire(
                    reference_engine.discover(request)
                )["result"]
        reference_engine.shutdown()

        # --- the served side: one warm engine behind the service.
        def factory(metrics=None):
            engine = DiscoveryEngine(
                corpus=corpus, metrics=metrics, max_workers=2
            )
            engine.prepare(base, seed=0)  # warm the candidate set
            return engine

        service = DiscoveryService(
            {"bench": factory},
            config=ServiceConfig(
                tenant_rate=0.0,
                tenant_burst=float(RUNS_PER_TENANT),
                max_queue_depth=4 * RUNS_PER_TENANT,
            ),
        )
        server = serve(service)
        host, port = server.server_address[:2]
        status_latencies = []
        latencies_lock = threading.Lock()
        run_ids = {}
        rejected = {"count": 0, "retry_after_ok": True}

        def tenant_load(tenant_index, tenant):
            _, body, _, _ = _call(
                host, port, "POST", "/v1/sessions", {"tenant": tenant}
            )
            sid = body["session"]["session_id"]
            for i in range(RUNS_PER_TENANT):
                seed = tenant_index * 100 + i
                status, body, _, _ = _call(
                    host, port, "POST", "/v1/runs",
                    {
                        "session": sid,
                        "request": _payload(base.name, score_column, seed),
                    },
                )
                assert status == 202, f"{tenant} run {i} refused: {body}"
                run_ids[(tenant, i)] = body["run"]["run_id"]
            if tenant_index == 0:
                # The noisy tenant blows through its quota: every extra
                # submission must be an immediate 429 with Retry-After.
                for i in range(EXTRA_NOISY_SUBMITS):
                    status, body, headers, _ = _call(
                        host, port, "POST", "/v1/runs",
                        {
                            "session": sid,
                            "request": _payload(
                                base.name, score_column, 9000 + i
                            ),
                        },
                    )
                    assert status == 429, f"expected 429, got {status}"
                    rejected["count"] += 1
                    if "Retry-After" not in headers:
                        rejected["retry_after_ok"] = False
            # Poll own runs to completion, sampling status latency.
            pending = {run_ids[(tenant, i)] for i in range(RUNS_PER_TENANT)}
            while pending:
                for run_id in sorted(pending):
                    status, body, _, elapsed = _call(
                        host, port, "GET", f"/v1/runs/{run_id}"
                    )
                    assert status == 200
                    with latencies_lock:
                        status_latencies.append(elapsed)
                    state = body["run"]["state"]
                    assert state != "failed", body["run"].get("error")
                    if state in ("completed", "cancelled"):
                        pending.discard(run_id)
                time.sleep(0.02)

        start = time.perf_counter()
        threads = [
            threading.Thread(target=tenant_load, args=(index, tenant))
            for index, tenant in enumerate(TENANTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start

        # --- fidelity: served records match in-process records byte
        # for byte (canonical JSON of the result payload).
        for key, run_id in run_ids.items():
            _, body, _, _ = _call(host, port, "GET", f"/v1/runs/{run_id}")
            assert body["run"]["state"] == "completed"
            served = json.dumps(body["run"]["record"]["result"], sort_keys=True)
            expected = json.dumps(references[key], sort_keys=True)
            assert served == expected, f"result drift for {key}"

        assert rejected["count"] == EXTRA_NOISY_SUBMITS
        assert rejected["retry_after_ok"], "429 without Retry-After"
        p50 = _percentile(status_latencies, 0.50)
        p99 = _percentile(status_latencies, 0.99)
        assert p99 < P99_BUDGET_SECONDS, (
            f"status p99 {p99:.3f}s over budget {P99_BUDGET_SECONDS}s"
        )
        server.drain(timeout=30)
        return {
            "wall": wall,
            "p50": p50,
            "p99": p99,
            "polls": len(status_latencies),
            "rejected": rejected["count"],
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "server_load",
        [
            f"catalog: {N_TABLES} tables, {len(TENANTS)} tenants x "
            f"{RUNS_PER_TENANT} runs (budget {QUERY_BUDGET}/run)",
            f"wall clock, both tenants served: {r['wall']:8.3f}s",
            f"status endpoint: {r['polls']} polls, "
            f"p50 {r['p50'] * 1000:7.2f}ms, p99 {r['p99'] * 1000:7.2f}ms "
            f"(budget {P99_BUDGET_SECONDS * 1000:.0f}ms)",
            f"quota: {r['rejected']} over-quota submissions -> HTTP 429 "
            "with Retry-After, well-behaved tenant unaffected",
            "fidelity: every served result byte-identical to in-process "
            "engine.discover()",
        ],
    )
