"""Figure 3: METAM vs baselines on the four headline tasks.

(a) classification (housing prices), (b) regression (collisions),
(c) what-if (SAT reading), (d) how-to (SAT total) — utility as a function
of the number of interventional queries.  iARDA runs on the supervised-ML
panels only, exactly as in the paper.

Expected shape: METAM reaches the highest utility with the fewest
queries; Overlap is dragged down by full-coverage erroneous joins;
Uniform wastes queries on distractors.
"""

from benchmarks.common import (
    average_results,
    averaged_table,
    report,
    run_comparison,
    scaled,
)
from repro.data import (
    collisions_scenario,
    housing_scenario,
    sat_howto_scenario,
    sat_whatif_scenario,
)

QUERY_POINTS = (10, 25, 50, 100, 150)
SEEDS = (0, 1)


def _averaged_panel(make_scenario, budget, query_points, **comparison_kwargs):
    per_seed = []
    for seed in SEEDS:
        scenario = make_scenario(seed)
        per_seed.append(
            run_comparison(scenario, budget=budget, seed=seed, **comparison_kwargs)
        )
    return average_results(per_seed, query_points)


def _check_metam_competitive(averages, slack=0.05):
    """METAM's final mean utility is within noise of the best searcher."""
    best = max(values[-1] for values in averages.values())
    assert averages["metam"][-1] >= best - slack


def test_fig3a_classification(benchmark):
    averages = benchmark.pedantic(
        lambda: _averaged_panel(
            lambda seed: housing_scenario(
                seed=seed,
                n_irrelevant=scaled(60),
                n_erroneous=scaled(40),
                n_traps=scaled(20),
            ),
            budget=150,
            query_points=QUERY_POINTS,
            include_iarda=True,
            iarda_target="price_label",
            iarda_mode="classification",
        ),
        rounds=1,
        iterations=1,
    )
    report("fig3a_classification", averaged_table(averages, QUERY_POINTS))
    _check_metam_competitive(averages)


def test_fig3b_regression(benchmark):
    averages = benchmark.pedantic(
        lambda: _averaged_panel(
            lambda seed: collisions_scenario(
                seed=seed,
                n_irrelevant=scaled(60),
                n_erroneous=scaled(40),
                n_traps=scaled(20),
            ),
            budget=150,
            query_points=QUERY_POINTS,
            include_iarda=True,
            iarda_target="collisions",
            iarda_mode="regression",
        ),
        rounds=1,
        iterations=1,
    )
    report("fig3b_regression", averaged_table(averages, QUERY_POINTS))
    _check_metam_competitive(averages)


def test_fig3c_what_if(benchmark):
    points = (10, 25, 50, 100, 200)
    averages = benchmark.pedantic(
        lambda: _averaged_panel(
            lambda seed: sat_whatif_scenario(
                seed=seed,
                n_irrelevant=scaled(60),
                n_erroneous=scaled(40),
                n_traps=scaled(25),
            ),
            budget=200,
            query_points=points,
        ),
        rounds=1,
        iterations=1,
    )
    report("fig3c_what_if", averaged_table(averages, points))
    _check_metam_competitive(averages)
    assert averages["metam"][-1] >= 0.95


def test_fig3d_how_to(benchmark):
    points = (10, 25, 50, 100, 200)
    averages = benchmark.pedantic(
        lambda: _averaged_panel(
            lambda seed: sat_howto_scenario(
                seed=seed,
                n_irrelevant=scaled(60),
                n_erroneous=scaled(40),
                n_traps=scaled(25),
            ),
            budget=200,
            query_points=points,
        ),
        rounds=1,
        iterations=1,
    )
    report("fig3d_how_to", averaged_table(averages, points))
    _check_metam_competitive(averages)
    assert averages["metam"][-1] >= 0.95
