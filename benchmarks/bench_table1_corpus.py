"""Table I: characteristics of the Open-Data and Kaggle corpora.

The paper reports #Tables / #Columns / #Joinable Columns / Size for both
repositories.  We generate laptop-scale synthetic corpora with the same
style contrast (many small portal tables vs fewer, wider Kaggle tables)
and report the same four columns.
"""

from benchmarks.common import report, scaled
from repro.data import corpus_characteristics, generate_corpus
from repro.discovery import DiscoveryIndex


def _characterize(style: str, n_tables: int, seed: int = 0) -> dict:
    corpus = generate_corpus(n_tables, style=style, seed=seed)
    index = DiscoveryIndex(min_containment=0.3, seed=seed).build(corpus)
    return corpus_characteristics(corpus, index)


def test_table1_corpus_characteristics(benchmark):
    rows = benchmark.pedantic(
        lambda: {
            "Open-Data": _characterize("open_data", scaled(250)),
            "Kaggle": _characterize("kaggle", scaled(60)),
        },
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'Dataset':10s} {'#Tables':>8} {'#Columns':>9} {'#Joinable':>10} {'Size':>12}",
    ]
    for name, stats in rows.items():
        lines.append(
            f"{name:10s} {stats['tables']:8d} {stats['columns']:9d} "
            f"{stats['joinable_columns']:10d} {stats['size_bytes']:11d}B"
        )
    lines.append("")
    lines.append("Paper: Open-Data 69K tables / 29.5M cols / 28.6M joinable / 119G;")
    lines.append("       Kaggle 1950 tables / 91K cols / 6.7M joinable / 18G.")
    lines.append("Shape check: open-data has more tables; kaggle tables are wider;")
    open_ratio = rows["Open-Data"]["joinable_columns"] / max(1, rows["Open-Data"]["columns"])
    lines.append(f"joinable/column ratio (open-data): {open_ratio:.2f}")
    report("table1_corpus", lines)
    assert rows["Open-Data"]["tables"] > rows["Kaggle"]["tables"]
    assert (
        rows["Kaggle"]["columns"] / rows["Kaggle"]["tables"]
        > rows["Open-Data"]["columns"] / rows["Open-Data"]["tables"]
    )
    assert rows["Open-Data"]["joinable_columns"] > 0
