"""Per-kernel before/after microbenchmarks + end-to-end cold prepare.

Every kernel is timed under both modes (``vectorized`` vs the retained
scalar ``reference``, which also disables the structural caches so it
reproduces the pre-kernel cost model) on corpus-shaped workloads, then
one cold ``prepare()`` runs end-to-end on the 2000-table corpus in both
modes with byte-identical results asserted.  The timings land in
``benchmarks/results/kernels.json`` — the bench-smoke CI job asserts on
that report.

Honest numbers (measured at full scale on the dev container):

* ``hash_strings`` v2 (seeded tabulation, blake2-free): **~9.5×** per
  value over the scalar loop — this is the kernel the ≥5× target holds
  on.
* type inference on numeric columns: ~6×; batch MinHash signing: ~2×.
* end-to-end cold prepare at the default ``hash_version=1``: ~1.3×.
  The v1 path is floor-bound by the pinned blake2b compatibility hash
  and CPython ``str()`` formatting, which no numpy evaluation can
  remove without changing stored-signature bytes; the JSON report
  records both numbers rather than claiming the per-kernel ratio for
  the pipeline.

Speed floors arm only at ``REPRO_SCALE >= 1`` (tiny workloads measure
dispatch overhead, not kernels); equivalence is asserted at every
scale.
"""

import json
import os
import time

import numpy as np

from benchmarks.common import RESULTS_DIR, SCALE, report, scaled
from repro import kernels
from repro.api.engine import DiscoveryEngine
from repro.api.request import CandidateSpec
from repro.data.corpus import generate_corpus
from repro.data.generator import make_keys
from repro.dataframe.table import Table

REPORT_PATH = os.path.join(RESULTS_DIR, "kernels.json")

#: Micro floors armed at full scale: measured ~9.5× (v2 hash) and ~6×
#: (numeric type inference) leave honest headroom above these.
FULL_SCALE_FLOORS = {"hash_v2": 5.0, "infer_numeric": 2.0}


def _time(fn, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _both_modes(fn) -> dict:
    with kernels.force_mode("vectorized"):
        vectorized = _time(fn)
    with kernels.force_mode("reference"):
        scalar = _time(fn)
    return {
        "vectorized_s": round(vectorized, 6),
        "reference_s": round(scalar, 6),
        "speedup": round(scalar / vectorized, 3) if vectorized else None,
    }


def micro_workloads() -> dict:
    rng = np.random.default_rng(0)
    n_values = scaled(20_000)
    strings = [f"value-{i:08d}" for i in range(n_values)]
    n_cols = scaled(600)
    hash_columns = [
        rng.integers(0, 1 << 64, size=50, dtype=np.uint64)
        for _ in range(n_cols)
    ]
    from repro.utils.rng import ensure_rng

    perm_rng = ensure_rng(0)
    a = perm_rng.integers(1, kernels.MERSENNE, size=64, dtype=np.uint64)
    b = perm_rng.integers(0, kernels.MERSENNE, size=64, dtype=np.uint64)
    floats = rng.normal(size=scaled(200_000)).tolist()
    numeric_cols = [
        rng.normal(size=200).tolist() for _ in range(scaled(300))
    ]
    return {
        "hash_v1": lambda: kernels.hash_strings(strings, 1),
        "hash_v2": lambda: kernels.hash_strings(strings, 2, seed=0),
        "minhash_many": lambda: kernels.minhash_many(hash_columns, a, b),
        "distinct_floats": lambda: kernels.distinct_strings(floats),
        "infer_numeric": lambda: [
            kernels.infer_column_type(col) for col in numeric_cols
        ],
    }


def test_kernel_micro_benchmarks():
    results = {
        name: _both_modes(fn) for name, fn in micro_workloads().items()
    }
    lines = [
        f"{name:16s} vectorized {r['vectorized_s']:.4f}s  "
        f"reference {r['reference_s']:.4f}s  speedup {r['speedup']}x"
        for name, r in results.items()
    ]
    report("kernels_micro", lines)
    _merge_report({"scale": SCALE, "micro": results})
    if SCALE >= 1.0:
        for name, floor in FULL_SCALE_FLOORS.items():
            assert results[name]["speedup"] >= floor, (
                f"{name} speedup {results[name]['speedup']} below "
                f"floor {floor}"
            )


def _cold_prepare(corpus, base, mode):
    with kernels.force_mode(mode):
        engine = DiscoveryEngine(corpus=corpus)
        start = time.perf_counter()
        candidates = engine.prepare(
            base,
            spec=CandidateSpec(
                min_containment=0.3, max_hops=1, max_fanout=500
            ),
        )
        return time.perf_counter() - start, candidates


def test_cold_prepare_end_to_end():
    corpus = generate_corpus(scaled(2000), seed=7)
    rng = np.random.default_rng(3)
    n_rows = 300
    columns = {}
    for pool in range(4):
        keys = make_keys(400, prefix=f"k{pool}_", start=0)
        columns[f"key{pool}"] = [
            keys[i] for i in rng.integers(0, len(keys), n_rows)
        ]
    columns["target"] = rng.normal(size=n_rows).tolist()
    base = Table("bench_base", columns)

    vec_seconds, vec_candidates = _cold_prepare(corpus, base, "vectorized")
    ref_seconds, ref_candidates = _cold_prepare(corpus, base, "reference")

    # Byte-identical prepared candidates — the whole-pipeline golden
    # gate (ids, overlaps, raw values, profile vectors).
    assert len(vec_candidates) == len(ref_candidates)
    for vec, ref in zip(vec_candidates, ref_candidates, strict=True):
        assert vec.aug_id == ref.aug_id
        assert vec.overlap == ref.overlap
        assert vec.values == ref.values
        assert np.array_equal(
            vec.profile_vector, ref.profile_vector, equal_nan=True
        )

    speedup = ref_seconds / vec_seconds if vec_seconds else None
    report(
        "kernels_cold_prepare",
        [
            f"tables {scaled(2000)}  candidates {len(vec_candidates)}",
            f"vectorized {vec_seconds:.3f}s  reference {ref_seconds:.3f}s"
            f"  speedup {speedup:.2f}x",
        ],
    )
    _merge_report(
        {
            "end_to_end": {
                "tables": scaled(2000),
                "candidates": len(vec_candidates),
                "vectorized_s": round(vec_seconds, 3),
                "reference_s": round(ref_seconds, 3),
                "speedup": round(speedup, 3),
                "identical_results": True,
            }
        }
    )
    if SCALE >= 1.0:
        # No-regression floor: the vectorized pipeline must not lose to
        # the pre-kernel cost model (generous margin for runner noise).
        assert vec_seconds <= ref_seconds * 1.10, (
            f"vectorized prepare {vec_seconds:.3f}s regressed past "
            f"reference {ref_seconds:.3f}s"
        )


def _merge_report(fragment: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(REPORT_PATH):
        with open(REPORT_PATH, encoding="utf-8") as handle:
            data = json.load(handle)
    data.update(fragment)
    with open(REPORT_PATH, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
