"""gc/build race hammer: lease-based write ownership loses nothing.

The liveness race: ``gc`` computes its live set from the saved
manifest, a concurrent builder writes a new object, and gc reclaims it
before the builder's ``save()`` lands.  The lease fix (writers stamp
fencing-token leases on in-flight objects; gc skips leased candidates
and re-checks liveness under the shard lock) claims **zero lost
objects** under any interleaving.

This benchmark claims three things:

- **safety under fire**: N concurrent builder processes racing a
  looping gc process over one store finish with every saved table's
  object readable and ``verify()`` clean — zero reclaimed-while-live
  objects (always asserted, both backends);
- **the counterfactual**: the identical stale-scan schedule with
  leases disabled (``lease_ttl=None``) demonstrably loses the
  in-flight object — the protection is measured against a reproduced
  failure, not assumed (always asserted; the deterministic schedule is
  also pinned in ``tests/catalog/test_gc_race.py``);
- **replication**: the same hammer over the ``segments`` backend ends
  with a synced read-only replica that verifies clean.
"""

import multiprocessing
import os
import shutil
import tempfile
import time

from benchmarks.common import SCALE, report, scaled
from repro.catalog import Catalog, CatalogStore
from repro.dataframe.table import Table

N_BUILDERS = scaled(3)
ROUNDS = scaled(4)
TABLES_PER_BUILDER = scaled(5)
N_KEEPERS = scaled(6)


def _keepers():
    return [
        Table(f"keep{i}", {"c": [f"v{i}", f"w{i}"]}) for i in range(N_KEEPERS)
    ]


def _builder_tables(builder: int, upto: int):
    return [
        Table(f"b{builder}t{j}", {"c": [f"b{builder}v{j}", f"b{builder}w{j}"]})
        for j in range(upto)
    ]


def _build_worker(root, builder, rounds):
    """One builder process: repeatedly add+save a growing slice of the
    corpus — every save is a fresh write→save race window.  Builders
    compose through ``add`` + merge-on-save (``refresh`` would sync the
    manifest to one builder's slice and drop its peers' tables)."""
    for upto in range(1, rounds + 1):
        catalog = Catalog.load(root)
        for table in _builder_tables(builder, upto):
            if table.name not in catalog:
                catalog.add(table)
        catalog.save()


def _gc_worker(root, stop):
    """The racing reclaimer: loop gc as fast as it will go until every
    builder is done."""
    while not stop.is_set():
        Catalog.load(root).gc()
    Catalog.load(root).gc()  # one final pass over the settled store


def _hammer(root, backend=None) -> dict:
    """Race N builders against a looping gc; return loss accounting."""
    seed = Catalog(
        store=CatalogStore(root, backend=backend), num_perm=8, bands=4
    )
    seed.refresh(_keepers())
    seed.save()
    seed.store.release_writer_lease()

    ctx = multiprocessing.get_context("fork")
    stop = ctx.Event()
    gc_proc = ctx.Process(target=_gc_worker, args=(root, stop))
    builders = [
        ctx.Process(target=_build_worker, args=(root, i, ROUNDS))
        for i in range(N_BUILDERS)
    ]
    start = time.perf_counter()
    gc_proc.start()
    for worker in builders:
        worker.start()
    for worker in builders:
        worker.join()
        assert worker.exitcode == 0, f"builder died with {worker.exitcode}"
    stop.set()
    gc_proc.join()
    assert gc_proc.exitcode == 0, f"gc worker died with {gc_proc.exitcode}"
    elapsed = time.perf_counter() - start

    store = CatalogStore(root)
    manifest = store.read_manifest()
    expected = {f"keep{i}" for i in range(N_KEEPERS)} | {
        f"b{i}t{j}" for i in range(N_BUILDERS) for j in range(ROUNDS)
    }
    missing_tables = expected - set(manifest["tables"])
    problems = Catalog.load(root).verify()["problems"]
    return {
        "elapsed": elapsed,
        "tables": len(manifest["tables"]),
        "missing_tables": sorted(missing_tables),
        "problems": problems,
        "backend": store.backend.name,
        "leases_outstanding": store.stats()["leases"],
    }


def _unsafe_loss_demo(root) -> int:
    """The pre-lease failure, reproduced deterministically: gc scans,
    a second writer lands an object, gc sweeps with the stale live set.
    Returns how many in-flight objects the lease-free path lost."""
    from tests.harness.entries import make_entry

    gc_store = CatalogStore(root, lease_ttl=None)
    gc_store.write_object("aaaa0001", {"name": "base"}, {"c": make_entry({"v"})})
    stale_live = set(gc_store.list_objects())
    builder = CatalogStore(root, lease_ttl=None)
    builder.write_object(
        "bbbb0002", {"name": "inflight"}, {"c": make_entry({"w"})}
    )
    gc_store.gc(stale_live)
    return 0 if builder.has_object("bbbb0002") else 1


def _safe_counterpart(root) -> int:
    """The identical schedule with leases on: losses must be zero."""
    from tests.harness.entries import make_entry

    gc_store = CatalogStore(root)
    gc_store.write_object("aaaa0001", {"name": "base"}, {"c": make_entry({"v"})})
    stale_live = set(gc_store.list_objects())
    builder = CatalogStore(root)
    builder.write_object(
        "bbbb0002", {"name": "inflight"}, {"c": make_entry({"w"})}
    )
    gc_store.gc(stale_live)
    lost = 0 if builder.has_object("bbbb0002") else 1
    builder.release_writer_lease()
    return lost


def test_catalog_gc_race(benchmark):
    def run() -> dict:
        out = {}
        tmp = tempfile.mkdtemp(prefix="bench_gc_race.")
        try:
            out["local"] = _hammer(os.path.join(tmp, "local"))
            out["segments"] = _hammer(
                os.path.join(tmp, "segments"), backend="segments"
            )
            replica = os.path.join(tmp, "replica")
            CatalogStore(os.path.join(tmp, "segments")).backend.sync_into(
                replica
            )
            out["replica_problems"] = Catalog.load(replica).verify()[
                "problems"
            ]
            out["unsafe_lost"] = _unsafe_loss_demo(os.path.join(tmp, "unsafe"))
            out["safe_lost"] = _safe_counterpart(os.path.join(tmp, "safe"))
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)

    for name in ("local", "segments"):
        h = r[name]
        assert h["missing_tables"] == [], (
            f"{name}: builders' saved tables lost: {h['missing_tables']}"
        )
        assert h["problems"] == [], (
            f"{name}: store dirty after hammer: {h['problems']}"
        )
    assert r["replica_problems"] == [], (
        f"synced replica dirty: {r['replica_problems']}"
    )
    assert r["safe_lost"] == 0, "lease path lost an in-flight object"
    assert r["unsafe_lost"] == 1, (
        "pre-lease path no longer reproduces the loss — the regression "
        "schedule needs updating"
    )

    lines = [
        f"{N_BUILDERS} builders x {ROUNDS} rounds racing a gc loop, "
        f"{N_KEEPERS} keeper tables, scale {SCALE}, {os.cpu_count()} CPUs",
    ]
    for name in ("local", "segments"):
        h = r[name]
        lines.append(
            f"{name:8s} backend: {h['tables']} tables saved, 0 lost, "
            f"verify clean, {h['leases_outstanding']} leases outstanding, "
            f"{h['elapsed']:.2f}s"
        )
    lines += [
        "segments replica (sync_into): verify clean",
        f"stale-scan schedule, leases ON : {r['safe_lost']} objects lost",
        f"stale-scan schedule, leases OFF: {r['unsafe_lost']} objects lost "
        "(the pre-lease race, reproduced)",
    ]
    report("gc_race", lines)
