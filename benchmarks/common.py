"""Shared benchmark harness: scaling, searcher comparison, reporting.

Every bench file regenerates one paper table/figure.  Experiments print
the same rows/series the paper reports (run pytest with ``-s`` to see
them live) and append them to ``benchmarks/results/`` so the output
survives pytest's capture.  ``REPRO_SCALE`` scales workload sizes
(default 1.0; 0.5 for a quick pass, 2.0+ towards paper scale).
"""

from __future__ import annotations

import os

from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an integer workload knob by REPRO_SCALE."""
    return max(minimum, int(round(value * SCALE)))


def report(name: str, lines) -> None:
    """Print a figure/table report and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join([f"=== {name} ==="] + list(lines)) + "\n"
    print("\n" + text)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as f:
        f.write(text)


def series_table(results: dict, query_points) -> list:
    """Format utility-vs-queries rows, one per searcher."""
    lines = ["searcher    " + "".join(f"{q:>8}" for q in query_points)]
    for name, result in results.items():
        lines.append(
            f"{name:12s}"
            + "".join(f"{result.utility_at(q):8.3f}" for q in query_points)
        )
    return lines


def run_comparison(
    scenario,
    budget: int,
    theta: float = 1.0,
    epsilon: float = 0.1,
    seed: int = 0,
    include_iarda: bool = False,
    iarda_target: str | None = None,
    iarda_mode: str = "classification",
    metam_config: MetamConfig | None = None,
    candidates=None,
    engine: DiscoveryEngine | None = None,
) -> dict:
    """Run METAM + MW/Overlap/Uniform (+iARDA) on one scenario.

    Returns ``{searcher_name: SearchResult}``; all searchers share the
    candidate set (prepared once by the engine) so query counts are
    comparable.  ``engine`` reuses an existing warm engine.
    """
    if engine is None:
        engine = DiscoveryEngine(corpus=scenario.corpus)
    if candidates is None:
        candidates = engine.prepare(scenario.base, seed=seed)
    config = metam_config or MetamConfig(
        theta=theta, query_budget=budget, epsilon=epsilon, seed=seed
    )

    def discover(searcher, **overrides):
        request = DiscoveryRequest(
            base=scenario.base,
            task=scenario.task,
            searcher=searcher,
            theta=theta,
            query_budget=budget,
            seed=seed,
            candidates=candidates,
            **overrides,
        )
        return engine.discover(request).result

    results = {"metam": discover("metam", config=config)}
    for name in ("mw", "overlap", "uniform"):
        results[name] = discover(name)
    if include_iarda:
        results["iarda"] = discover(
            "iarda",
            options={"target_column": iarda_target, "mode": iarda_mode},
        )
    return results


def average_results(per_seed: list, query_points) -> dict:
    """Average utility_at curves across seeds → {name: [values]}."""
    names = per_seed[0].keys()
    out = {}
    for name in names:
        out[name] = [
            sum(r[name].utility_at(q) for r in per_seed) / len(per_seed)
            for q in query_points
        ]
    return out


def averaged_table(averages: dict, query_points) -> list:
    lines = ["searcher    " + "".join(f"{q:>8}" for q in query_points)]
    for name, values in averages.items():
        lines.append(f"{name:12s}" + "".join(f"{v:8.3f}" for v in values))
    return lines
