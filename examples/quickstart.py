"""Quickstart: goal-oriented data discovery in ~20 lines.

Builds the housing-price scenario (a base table plus an open-data-style
repository), lets METAM discover utility-raising augmentations, and
compares against the uniform-sampling baseline.

Run:  python examples/quickstart.py
"""

from repro import MetamConfig, prepare_candidates, run_baseline, run_metam
from repro.data import housing_scenario
from repro.tasks.base import canonical_column


def main():
    scenario = housing_scenario(seed=0)
    print(f"Input dataset: {scenario.base.name} "
          f"({scenario.base.num_rows} rows, {scenario.base.num_columns} cols)")
    print(f"Repository: {len(scenario.corpus)} tables")

    candidates = prepare_candidates(scenario.base, scenario.corpus, seed=0)
    print(f"Discovered {len(candidates)} candidate augmentations\n")

    config = MetamConfig(theta=0.85, query_budget=150, epsilon=0.1, seed=0)
    result = run_metam(candidates, scenario.base, scenario.corpus, scenario.task, config)
    print(result.summary())
    for aug_id in result.selected:
        print(f"  + {canonical_column(aug_id)}  (via {aug_id.split('#')[0]})")

    baseline = run_baseline(
        "uniform", candidates, scenario.base, scenario.corpus, scenario.task,
        theta=0.85, query_budget=150, seed=0,
    )
    print(f"\nFor comparison — {baseline.summary()}")


if __name__ == "__main__":
    main()
