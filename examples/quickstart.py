"""Quickstart: goal-oriented data discovery in ~20 lines.

Builds the housing-price scenario (a base table plus an open-data-style
repository), opens a DiscoveryEngine over the repository, lets METAM
discover utility-raising augmentations, and compares against the
uniform-sampling baseline — both served by the same engine, sharing one
prepared candidate set.

Run:  python examples/quickstart.py
"""

from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.data import housing_scenario
from repro.tasks.base import canonical_column


def main():
    scenario = housing_scenario(seed=0)
    print(f"Input dataset: {scenario.base.name} "
          f"({scenario.base.num_rows} rows, {scenario.base.num_columns} cols)")
    print(f"Repository: {len(scenario.corpus)} tables")

    engine = DiscoveryEngine(corpus=scenario.corpus)
    run = engine.discover(DiscoveryRequest(
        base=scenario.base,
        task=scenario.task,
        searcher="metam",
        seed=0,
        config=MetamConfig(theta=0.85, query_budget=150, epsilon=0.1, seed=0),
    ))
    print(f"Discovered {run.n_candidates} candidate augmentations\n")
    print(run.result.summary())
    for aug_id in run.result.selected:
        print(f"  + {canonical_column(aug_id)}  (via {aug_id.split('#')[0]})")

    # Second request, same engine: candidates come from the warm cache.
    baseline = engine.discover(DiscoveryRequest(
        base=scenario.base,
        task=scenario.task,
        searcher="uniform",
        theta=0.85,
        query_budget=150,
        seed=0,
    ))
    assert baseline.candidate_source == "cache"
    print(f"\nFor comparison — {baseline.result.summary()}")


if __name__ == "__main__":
    main()
