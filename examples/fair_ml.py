"""Fair classification (§VI-A.4): discovery under a fairness constraint.

The repository contains a highly predictive but age-correlated credit
feature (which the fairness-aware task must discard) and a fair merit
feature (the useful augmentation).  Single-profile rankings chase the
unfair feature; METAM's weighted profile combination finds the fair one.

Run:  python examples/fair_ml.py
"""

from repro import MetamConfig, prepare_candidates, run_baseline, run_metam
from repro.data import fairness_scenario
from repro.profiles.extensions import extended_registry
from repro.tasks.base import canonical_column


def main():
    scenario = fairness_scenario(seed=0)
    print(f"Base fair-classifier F-score: {scenario.task.utility(scenario.base):.3f}")
    print("(features correlated with 'age' are dropped before training)\n")

    # The extension registry adds a fairness profile keyed to the
    # sensitive attribute — "casting a wide net" as §IV-B suggests.
    registry = extended_registry(sensitive_column="age")
    candidates = prepare_candidates(
        scenario.base, scenario.corpus, registry=registry, seed=0
    )
    print(f"Candidate augmentations: {len(candidates)} "
          f"(profiled with {len(registry)} profiles)\n")

    config = MetamConfig(theta=0.75, query_budget=60, epsilon=0.1, seed=0)
    result = run_metam(
        candidates, scenario.base, scenario.corpus, scenario.task, config
    )
    print(result.summary())
    print("Selected:", [canonical_column(a) for a in result.selected])

    overlap = run_baseline(
        "overlap", candidates, scenario.base, scenario.corpus, scenario.task,
        theta=0.75, query_budget=60, seed=0,
    )
    print(f"\nOverlap baseline: {overlap.summary()}")


if __name__ == "__main__":
    main()
