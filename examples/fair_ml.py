"""Fair classification (§VI-A.4): discovery under a fairness constraint.

The repository contains a highly predictive but age-correlated credit
feature (which the fairness-aware task must discard) and a fair merit
feature (the useful augmentation).  Single-profile rankings chase the
unfair feature; METAM's weighted profile combination finds the fair one.

Run:  python examples/fair_ml.py
"""

from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.data import fairness_scenario
from repro.profiles.extensions import extended_registry
from repro.tasks.base import canonical_column


def main():
    scenario = fairness_scenario(seed=0)
    print(f"Base fair-classifier F-score: {scenario.task.utility(scenario.base):.3f}")
    print("(features correlated with 'age' are dropped before training)\n")

    # The extension registry adds a fairness profile keyed to the
    # sensitive attribute — "casting a wide net" as §IV-B suggests.  The
    # request carries the registry override; the engine caches candidate
    # sets per registry, so both searchers below share one preparation.
    registry = extended_registry(sensitive_column="age")
    engine = DiscoveryEngine(corpus=scenario.corpus)

    run = engine.discover(DiscoveryRequest(
        base=scenario.base,
        task=scenario.task,
        searcher="metam",
        seed=0,
        registry=registry,
        config=MetamConfig(theta=0.75, query_budget=60, epsilon=0.1, seed=0),
    ))
    print(f"Candidate augmentations: {run.n_candidates} "
          f"(profiled with {len(registry)} profiles)\n")
    print(run.result.summary())
    print("Selected:", [canonical_column(a) for a in run.result.selected])

    overlap = engine.discover(DiscoveryRequest(
        base=scenario.base,
        task=scenario.task,
        searcher="overlap",
        theta=0.75,
        query_budget=60,
        seed=0,
        registry=registry,
    ))
    assert overlap.candidate_source == "cache"
    print(f"\nOverlap baseline: {overlap.result.summary()}")


if __name__ == "__main__":
    main()
