"""Entity linking (§VI-A.4): disambiguating city names with augmentation.

"Springfield" exists in several states; without context the linker cannot
choose a knowledge-base entity.  The repository holds a city → state
table, and METAM discovers that this single augmentation fixes linking —
in a handful of queries, matching the paper's report of 4 queries versus
10 for MW and 40+ for the other baselines.

Run:  python examples/entity_linking.py
"""

from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.data import entity_linking_scenario
from repro.tasks.base import canonical_column


def main():
    scenario = entity_linking_scenario(seed=0)
    base_accuracy = scenario.task.utility(scenario.base)
    print(f"Linking accuracy without augmentation: {base_accuracy:.3f}")
    print("(ambiguous city names cannot be resolved)\n")

    engine = DiscoveryEngine(corpus=scenario.corpus)
    run = engine.discover(DiscoveryRequest(
        base=scenario.base,
        task=scenario.task,
        searcher="metam",
        seed=0,
        config=MetamConfig(theta=0.99, query_budget=60, epsilon=0.1, seed=0),
    ))
    print(f"Candidate augmentations: {run.n_candidates}")
    print(f"\n{run.result.summary()}")
    print("Selected augmentations:",
          [canonical_column(a) for a in run.result.selected])

    for name in ("mw", "uniform"):
        r = engine.discover(DiscoveryRequest(
            base=scenario.base,
            task=scenario.task,
            searcher=name,
            theta=0.99,
            query_budget=60,
            seed=0,
        )).result
        print(f"{name}: reached {r.utility:.3f} in {r.queries} queries")


if __name__ == "__main__":
    main()
