"""What-if causal analysis (§VI-A): what changes if reading scores rise?

The SAT scenario plants a causal structure: writing/essay/verbal scores
are downstream of the critical-reading score, the math score is only
confounded with it, and dozens of distractor tables are noise.  METAM
steers discovery toward the augmentations the causal task certifies.

Run:  python examples/causal_whatif.py
"""

from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.data import sat_whatif_scenario
from repro.tasks.base import canonical_column


def main():
    scenario = sat_whatif_scenario(seed=0)
    print("Question: what is causally affected if we raise "
          "'critical_reading_score'?")
    print(f"Planted affected attributes: {sorted(scenario.truth_columns)}\n")

    engine = DiscoveryEngine(corpus=scenario.corpus)
    run = engine.discover(DiscoveryRequest(
        base=scenario.base,
        task=scenario.task,
        searcher="metam",
        seed=0,
        config=MetamConfig(theta=1.0, query_budget=250, epsilon=0.1, seed=0),
    ))
    print(f"Candidate augmentations: {run.n_candidates}")
    print(f"\n{run.result.summary()}")
    found = {canonical_column(a) for a in run.result.selected}
    print(f"Causally affected attributes discovered: {sorted(found)}")
    print(f"Recall of ground truth: "
          f"{len(found & scenario.truth_columns)}/{len(scenario.truth_columns)}")

    mw = engine.discover(DiscoveryRequest(
        base=scenario.base,
        task=scenario.task,
        searcher="mw",
        theta=1.0,
        query_budget=250,
        seed=0,
    )).result
    print(f"\nMW baseline for comparison: {mw.summary()}")


if __name__ == "__main__":
    main()
