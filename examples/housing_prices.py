"""Housing-price deep dive: the paper's §I anecdote, end to end.

Predicting house prices, METAM finds the "obvious" augmentations (income,
crime) and the non-obvious ones (Walmart presence, taxi trips, grocery
stores) without human guidance.  This example prints the discovery
pipeline stage by stage: candidates, clusters, learned profile weights,
and the utility-vs-queries trace for METAM and every baseline.

Run:  python examples/housing_prices.py
"""

import numpy as np

from repro import MetamConfig, prepare_candidates, run_baseline, run_metam
from repro.core.clustering import cluster_partition
from repro.data import housing_scenario
from repro.profiles import default_registry
from repro.tasks.base import canonical_column

QUERY_POINTS = (10, 25, 50, 100, 150)


def main():
    scenario = housing_scenario(seed=0, n_irrelevant=30, n_erroneous=20, n_traps=10)
    base_utility = scenario.task.utility(scenario.base)
    print(f"Base classifier accuracy (no augmentation): {base_utility:.3f}\n")

    candidates = prepare_candidates(scenario.base, scenario.corpus, seed=0)
    print(f"Candidate augmentations: {len(candidates)}")
    truths = [
        c for c in candidates if canonical_column(c.aug_id) in scenario.truth_columns
    ]
    print(f"  of which planted ground truth: {len(truths)}")

    vectors = np.vstack([c.profile_vector for c in candidates])
    clusters = cluster_partition(vectors, epsilon=0.1, seed=0)
    print(f"  ε-cover clusters (ε=0.1): {clusters.n_clusters}\n")

    config = MetamConfig(theta=1.0, query_budget=150, epsilon=0.1, seed=0)
    results = {"metam": run_metam(candidates, scenario.base, scenario.corpus,
                                  scenario.task, config)}
    for name in ("mw", "overlap", "uniform"):
        results[name] = run_baseline(
            name, candidates, scenario.base, scenario.corpus, scenario.task,
            theta=1.0, query_budget=150, seed=0,
        )

    print("Utility vs number of queries (best so far):")
    header = "searcher  " + "".join(f"{q:>8}" for q in QUERY_POINTS)
    print(header)
    for name, result in results.items():
        row = f"{name:10s}" + "".join(
            f"{result.utility_at(q):8.3f}" for q in QUERY_POINTS
        )
        print(row)

    metam = results["metam"]
    print(f"\nMETAM selected ({len(metam.selected)} augmentations):")
    for aug_id in metam.selected:
        print(f"  + {canonical_column(aug_id)}")
    names = default_registry().names
    weights = metam.extras["profile_weights"]
    print("\nLearned profile importance:")
    for name, weight in sorted(zip(names, weights), key=lambda p: -p[1]):
        print(f"  {name:20s} {weight:.3f}")


if __name__ == "__main__":
    main()
