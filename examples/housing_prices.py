"""Housing-price deep dive: the paper's §I anecdote, end to end.

Predicting house prices, METAM finds the "obvious" augmentations (income,
crime) and the non-obvious ones (Walmart presence, taxi trips, grocery
stores) without human guidance.  This example serves every searcher from
one DiscoveryEngine and prints the discovery pipeline stage by stage:
candidates, clusters, learned profile weights, the run's live event
stream, and the utility-vs-queries trace for METAM and every baseline.

Run:  python examples/housing_prices.py
"""

import numpy as np

from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
from repro.core.clustering import cluster_partition
from repro.data import housing_scenario
from repro.profiles import default_registry
from repro.tasks.base import canonical_column

QUERY_POINTS = (10, 25, 50, 100, 150)


def main():
    scenario = housing_scenario(seed=0, n_irrelevant=30, n_erroneous=20, n_traps=10)
    base_utility = scenario.task.utility(scenario.base)
    print(f"Base classifier accuracy (no augmentation): {base_utility:.3f}\n")

    engine = DiscoveryEngine(corpus=scenario.corpus)
    candidates = engine.prepare(scenario.base, seed=0)
    print(f"Candidate augmentations: {len(candidates)}")
    truths = [
        c for c in candidates if canonical_column(c.aug_id) in scenario.truth_columns
    ]
    print(f"  of which planted ground truth: {len(truths)}")

    vectors = np.vstack([c.profile_vector for c in candidates])
    clusters = cluster_partition(vectors, epsilon=0.1, seed=0)
    print(f"  ε-cover clusters (ε=0.1): {clusters.n_clusters}\n")

    # Stream METAM's progress live through the event callback.
    def narrate(event):
        if event.kind == "augmentation-accepted":
            print(f"  [event] accepted {canonical_column(event.aug_id)} "
                  f"→ utility {event.utility:.3f}")

    def request_for(searcher, **overrides):
        return DiscoveryRequest(
            base=scenario.base, task=scenario.task, searcher=searcher,
            theta=1.0, query_budget=150, seed=0, **overrides,
        )

    print("METAM run (accepted augmentations as they happen):")
    config = MetamConfig(theta=1.0, query_budget=150, epsilon=0.1, seed=0)
    metam_run = engine.discover(request_for("metam", config=config),
                                progress=narrate)
    results = {"metam": metam_run.result}
    for name in ("mw", "overlap", "uniform"):
        results[name] = engine.discover(request_for(name)).result

    print("\nUtility vs number of queries (best so far):")
    header = "searcher  " + "".join(f"{q:>8}" for q in QUERY_POINTS)
    print(header)
    for name, result in results.items():
        row = f"{name:10s}" + "".join(
            f"{result.utility_at(q):8.3f}" for q in QUERY_POINTS
        )
        print(row)

    metam = results["metam"]
    print(f"\nMETAM selected ({len(metam.selected)} augmentations):")
    for aug_id in metam.selected:
        print(f"  + {canonical_column(aug_id)}")
    names = default_registry().names
    weights = metam.extras["profile_weights"]
    print("\nLearned profile importance:")
    for name, weight in sorted(zip(names, weights, strict=True), key=lambda p: -p[1]):
        print(f"  {name:20s} {weight:.3f}")
    print(f"\nEngine stats: {engine.stats()['runs_completed']} runs served, "
          f"{engine.stats()['queries_served']} queries, "
          f"{engine.stats()['prepared_candidate_sets']} candidate set(s) prepared")


if __name__ == "__main__":
    main()
